"""Differential fuzzing of the query language across all backends.

The evaluate-everywhere-and-compare discipline: random hierarchies,
databases and queries (drawn from all ten token kinds — item, ``^name``,
``?``, ``+``, ``*``, ``*{m,n}`` bounded gap, ``(a|b|^C)`` disjunction,
``!name`` / ``!^Cat`` negation (counted as two kinds: exact and
subtree), ``token@N`` frequency floor — plus per-query σ overrides) are
answered by five implementations that must agree byte for byte on the
ranked ``(pattern, frequency)`` list:

* a naive oracle — backtracking matcher over the raw pattern mapping,
  no compiled form, no postings, no candidate pruning;
* :class:`~repro.query.index.PatternIndex` — in-memory, inverted index,
  answered exactly by the compiled-plan bitmap engine;
* :class:`~repro.serve.store.PatternStore` — single mmap'd store file
  with positional postings, same bitmap engine;
* :class:`~repro.serve.sharded.ShardedPatternStore` — k-way heap merge
  over shard files;
* a fabricated **version-1** store file (no positional postings) —
  exercises the accelerator's bitset-prune + DP-verify fallback.

Queries are biased toward gap/adjacency-dense shapes (a third draw from
a ``?``/``*{m,n}``-heavy pool) because position-window arithmetic is
where the plan engine could silently diverge from the DP; a companion
property test asserts stage-1 pruning only ever *over*-admits.

``LASH_DIFF_SEED`` reseeds the generator (CI runs the fixed default
plus one randomized seed per build); ``LASH_DIFF_INSTANCES`` scales the
number of mined instances.  Every failure message carries the seed,
instance and query needed to replay it, and when
``LASH_DIFF_ARTIFACT_DIR`` is set a failing run additionally writes a
replay bundle there — the generated corpus and hierarchy as loadable
files plus a ``replay.txt`` with the one command that reproduces the
crash locally (CI uploads the directory as a build artifact).
"""

from __future__ import annotations

import json
import os
import random
from pathlib import Path

import pytest

from repro import Hierarchy, Lash, MiningParams, SequenceDatabase
from repro.errors import UnknownItemError
from repro.query import PatternIndex, parse_query
from repro.query.tokens import (
    AnyToken,
    FloorToken,
    GapToken,
    ItemToken,
    NotToken,
    OneOfToken,
    PlusToken,
    QueryToken,
    SpanToken,
    UnderToken,
    is_negation_only,
    normalize_query,
)
from repro.serve import QueryService, open_store, write_store

SEED = int(os.environ.get("LASH_DIFF_SEED", "20260729"))
N_INSTANCES = int(os.environ.get("LASH_DIFF_INSTANCES", "24"))
QUERIES_PER_INSTANCE = 14
ARTIFACT_DIR = os.environ.get("LASH_DIFF_ARTIFACT_DIR")

#: the ten generated kinds: one per token kind, negation split into its
#: exact and subtree forms (their candidate-selection behavior differs —
#: ``!^C`` excludes a whole subtree), and cycling the required kind over
#: the full tuple guarantees coverage even on unlucky seeds
KINDS = (
    "item",
    "under",
    "any",
    "plus",
    "span",
    "gap",
    "oneof",
    "not",
    "notunder",
    "floor",
)


# ----------------------------------------------------------------------
# the oracle: brute-force matching over the raw pattern mapping
# ----------------------------------------------------------------------


def _oracle_token_matches(token: QueryToken, item: int, vocab) -> bool:
    """Does this single-item token admit the item?  Hierarchy facts come
    from the *string-level* hierarchy, not the backends' id-level caches.
    """
    if isinstance(token, AnyToken):
        return True
    if isinstance(token, ItemToken):
        return vocab.name(item) == token.name
    if isinstance(token, UnderToken):
        return token.name in vocab.hierarchy.ancestors_or_self(
            vocab.name(item)
        )
    if isinstance(token, OneOfToken):
        return any(
            _oracle_token_matches(choice, item, vocab)
            for choice in token.choices
        )
    if isinstance(token, NotToken):
        return not _oracle_token_matches(token.inner, item, vocab)
    if isinstance(token, FloorToken):
        return vocab.frequency(item) >= token.floor and _oracle_token_matches(
            token.inner, item, vocab
        )
    raise AssertionError(f"oracle cannot match {token!r}")


def _oracle_match(tokens, pattern, vocab) -> bool:
    """Backtracking recursion — deliberately nothing like the DP in
    :meth:`PatternSearchBase._matches`."""

    def rec(i: int, j: int) -> bool:
        if i == len(tokens):
            return j == len(pattern)
        token = tokens[i]
        if isinstance(token, SpanToken):
            return any(rec(i + 1, k) for k in range(j, len(pattern) + 1))
        if isinstance(token, PlusToken):
            return any(rec(i + 1, k) for k in range(j + 1, len(pattern) + 1))
        if isinstance(token, GapToken):
            stop = (
                len(pattern)
                if token.max_items is None
                else min(len(pattern), j + token.max_items)
            )
            return any(
                rec(i + 1, k) for k in range(j + token.min_items, stop + 1)
            )
        return (
            j < len(pattern)
            and _oracle_token_matches(token, pattern[j], vocab)
            and rec(i + 1, j + 1)
        )

    return rec(0, 0)


def _oracle_search(patterns, vocab, tokens, min_freq=None):
    """Ranked (decoded pattern, frequency) hits, most frequent first,
    ties by coded pattern ascending — the shared index order, re-stated
    here independently.  ``min_freq`` is the per-query σ override: a
    plain filter here, a rank-prefix cut in the backends."""
    hits = [
        (coded, freq)
        for coded, freq in patterns.items()
        if (min_freq is None or freq >= min_freq)
        and _oracle_match(tokens, coded, vocab)
    ]
    hits.sort(key=lambda record: (-record[1], record[0]))
    return [(vocab.decode_sequence(coded), freq) for coded, freq in hits]


# ----------------------------------------------------------------------
# random instances and queries
# ----------------------------------------------------------------------


def _random_hierarchy(rng: random.Random) -> Hierarchy:
    """A random forest with occasional extra DAG edges."""
    n = rng.randint(3, 9)
    names = [f"i{k}" for k in range(n)]
    hierarchy = Hierarchy()
    for idx, name in enumerate(names):
        parent = None
        if idx and rng.random() < 0.6:
            parent = names[rng.randrange(idx)]
        hierarchy.add_item(name, parent)
    for idx in range(2, n):
        if rng.random() < 0.15:
            candidate = names[rng.randrange(idx)]
            if candidate not in hierarchy.ancestors_or_self(names[idx]):
                hierarchy.add_edge(names[idx], candidate)
    return hierarchy


def _random_database(rng: random.Random, names) -> SequenceDatabase:
    return SequenceDatabase(
        [
            [rng.choice(names) for _ in range(rng.randint(1, 6))]
            for _ in range(rng.randint(2, 10))
        ]
    )


def _random_name(rng: random.Random, vocab) -> str:
    return vocab.name(rng.randrange(len(vocab)))


def _random_single_token(rng: random.Random, vocab, kind: str) -> QueryToken:
    if kind == "item":
        return ItemToken(_random_name(rng, vocab))
    if kind == "under":
        return UnderToken(_random_name(rng, vocab))
    if kind == "any":
        return AnyToken()
    if kind == "oneof":
        return OneOfToken(
            tuple(
                _random_single_token(
                    rng, vocab, rng.choice(("item", "under"))
                )
                for _ in range(rng.randint(1, 3))
            )
        )
    if kind == "not":
        # exact-item negation, occasionally over a whole disjunction
        return NotToken(
            _random_single_token(
                rng, vocab, "oneof" if rng.random() < 0.3 else "item"
            )
        )
    if kind == "notunder":
        return NotToken(UnderToken(_random_name(rng, vocab)))
    assert kind == "floor"
    # "not" among the inner kinds: `!a@N` is the floor-over-negation
    # form, whose finite candidate set separates it from bare negation
    inner = _random_single_token(
        rng, vocab, rng.choice(("item", "under", "any", "oneof", "not"))
    )
    # floors drawn around real corpus frequencies so some pass, some cut
    anchor = vocab.frequency(rng.randrange(len(vocab)))
    return FloorToken(inner, max(0, anchor + rng.randint(-1, 2)))


def _random_gap(rng: random.Random) -> GapToken:
    lower = rng.randint(0, 2)
    upper = None if rng.random() < 0.3 else lower + rng.randint(0, 2)
    return GapToken(lower, upper)


#: kind pool for gap/adjacency-dense queries: heavy on the tokens that
#: exercise the plan engine's window arithmetic (positional shifts,
#: bounded/unbounded spreads, exact-adjacency chains)
DENSE_KINDS = ("gap", "any", "gap", "plus", "any", "item", "under", "gap")


def _is_dense(tokens) -> bool:
    """A gap/adjacency-dense query: two or more window-shaping tokens
    (``?`` forces exact adjacency arithmetic; ``*{m,n}`` forces bounded
    spreads) — the shapes the compiled-plan accelerator targets."""
    return (
        sum(1 for t in tokens if isinstance(t, (GapToken, AnyToken))) >= 2
    )


def _random_query(
    rng: random.Random, vocab, required_kind: str
) -> tuple[QueryToken, ...]:
    """1–5 tokens, at least one of ``required_kind`` (cycling the
    requirement over all ten kinds guarantees full coverage even on
    unlucky seeds).  The required token's position is biased toward the
    string boundaries so gaps regularly anchor the first and last
    region — the places where off-by-ones in the matcher DP live.

    A third of queries draw from :data:`DENSE_KINDS` instead of the
    uniform pool: gap/adjacency-heavy shapes whose position-window
    arithmetic is where the plan engine can silently diverge from the
    DP (the harness asserts a floor on how many such queries ran)."""
    if rng.random() < 0.35:
        length = rng.randint(2, 5)
        kinds = [rng.choice(DENSE_KINDS) for _ in range(length)]
    else:
        length = rng.randint(1, 4)
        kinds = [rng.choice(KINDS) for _ in range(length)]
    position = rng.choice((0, length - 1, rng.randrange(length)))
    kinds[position] = required_kind
    tokens = []
    for kind in kinds:
        if kind == "plus":
            tokens.append(PlusToken())
        elif kind == "span":
            tokens.append(SpanToken())
        elif kind == "gap":
            tokens.append(_random_gap(rng))
        else:
            tokens.append(_random_single_token(rng, vocab, kind))
    return tuple(tokens)


def _random_min_freq(rng: random.Random, patterns) -> int:
    """A σ override anchored on real pattern frequencies, so some
    queries are cut mid-ranking, some not at all, some entirely."""
    anchor = rng.choice(sorted(patterns.values())) if patterns else 1
    return max(0, anchor + rng.randint(-1, 2))


def _render_token(token: QueryToken) -> str:
    """The string syntax for a token (all generated names are
    syntax-safe ``i<k>`` identifiers)."""
    if isinstance(token, ItemToken):
        return token.name
    if isinstance(token, UnderToken):
        return f"^{token.name}"
    if isinstance(token, AnyToken):
        return "?"
    if isinstance(token, PlusToken):
        return "+"
    if isinstance(token, SpanToken):
        return "*"
    if isinstance(token, GapToken):
        upper = "" if token.max_items is None else token.max_items
        return f"*{{{token.min_items},{upper}}}"
    if isinstance(token, NotToken):
        return f"!{_render_token(token.inner)}"
    if isinstance(token, OneOfToken):
        return "(" + "|".join(_render_token(c) for c in token.choices) + ")"
    assert isinstance(token, FloorToken)
    return f"{_render_token(token.inner)}@{token.floor}"


def _render_query(tokens) -> str:
    return " ".join(_render_token(t) for t in tokens)


def _token_kinds(tokens) -> set[str]:
    kinds: set[str] = set()
    for token in tokens:
        if isinstance(token, ItemToken):
            kinds.add("item")
        elif isinstance(token, UnderToken):
            kinds.add("under")
        elif isinstance(token, AnyToken):
            kinds.add("any")
        elif isinstance(token, PlusToken):
            kinds.add("plus")
        elif isinstance(token, SpanToken):
            kinds.add("span")
        elif isinstance(token, GapToken):
            kinds.add("gap")
        elif isinstance(token, NotToken):
            kinds.add(
                "notunder" if isinstance(token.inner, UnderToken) else "not"
            )
        elif isinstance(token, OneOfToken):
            kinds.add("oneof")
        elif isinstance(token, FloorToken):
            kinds.add("floor")
    return kinds


# ----------------------------------------------------------------------
# replay bundles
# ----------------------------------------------------------------------


def _dump_replay_bundle(database, hierarchy, params, context: str) -> str:
    """Write the failing instance where CI can pick it up as an artifact.

    The bundle holds the generated corpus/hierarchy as loadable files
    (``lash mine --db corpus.txt --hierarchy hierarchy.txt`` works on
    them directly), the mining parameters and failure context as JSON,
    and the one command that replays the whole failing run.
    """
    if not ARTIFACT_DIR:
        return ""
    bundle = Path(ARTIFACT_DIR) / f"diff-seed-{SEED}"
    bundle.mkdir(parents=True, exist_ok=True)
    database.to_file(bundle / "corpus.txt")
    hierarchy.to_file(bundle / "hierarchy.txt")
    (bundle / "failure.json").write_text(
        json.dumps(
            {
                "seed": SEED,
                "instances": N_INSTANCES,
                "sigma": params.sigma,
                "gamma": params.gamma,
                "lam": params.lam,
                "context": context,
            },
            indent=2,
        )
    )
    (bundle / "replay.txt").write_text(
        f"LASH_DIFF_SEED={SEED} LASH_DIFF_INSTANCES={N_INSTANCES} "
        "PYTHONPATH=src python -m pytest -q "
        "tests/property/test_query_differential.py\n"
    )
    return f" [replay bundle: {bundle}]"


# ----------------------------------------------------------------------
# the harness
# ----------------------------------------------------------------------


def test_differential_oracle_vs_all_backends(tmp_path):
    rng = random.Random(SEED)
    cases = 0
    sigma_cases = 0
    dense_cases = 0
    kinds_covered: set[str] = set()
    paths_total = {
        "exact": 0, "pruned": 0, "scan": 0, "wildcard": 0, "legacy": 0,
    }
    for instance in range(N_INSTANCES):
        hierarchy = _random_hierarchy(rng)
        database = _random_database(rng, list(hierarchy.items))
        params = MiningParams(
            sigma=rng.randint(1, 2),
            gamma=rng.choice([0, 1, 2, None]),
            lam=rng.randint(2, 4),
        )
        result = Lash(params).mine(database, hierarchy)
        patterns, vocab = result.patterns, result.vocabulary

        index = PatternIndex(patterns, vocab)
        single_path = tmp_path / f"i{instance}.store"
        result.to_store(single_path)
        sharded_path = tmp_path / f"i{instance}.shards"
        result.to_store(sharded_path, shards=rng.randint(2, 4))
        # a version-1 file (no positional postings): the accelerator
        # must fall back to bitset pruning + DP verification and still
        # agree byte for byte
        legacy_path = tmp_path / f"i{instance}.v1.store"
        write_store(legacy_path, patterns, vocab, store_version=1)

        try:
            with open_store(single_path) as single, open_store(
                sharded_path
            ) as sharded, open_store(legacy_path) as legacy:
                assert not legacy._has_positions(), "v1 store has positions?"
                backends = [index, single, sharded, legacy]
                for q in range(QUERIES_PER_INSTANCE):
                    tokens = _random_query(rng, vocab, KINDS[q % len(KINDS)])
                    kinds_covered |= _token_kinds(tokens)
                    if _is_dense(tokens):
                        dense_cases += 1
                    rendered = _render_query(tokens)
                    context = (
                        f"seed={SEED} instance={instance} query={rendered!r}"
                    )

                    # the string syntax round-trips to the generated tokens
                    assert parse_query(rendered) == tokens, context

                    expected = _oracle_search(patterns, vocab, tokens)
                    for backend in backends:
                        got = [
                            (m.pattern, m.frequency)
                            for m in backend.search(tokens)
                        ]
                        assert got == expected, (
                            f"{context} backend={type(backend).__name__}: "
                            f"{got!r} != oracle {expected!r}"
                        )

                    # per-query σ override: a rank-prefix cut on every
                    # backend must equal the oracle's plain filter
                    if rng.random() < 0.5:
                        min_freq = _random_min_freq(rng, patterns)
                        floored = _oracle_search(
                            patterns, vocab, tokens, min_freq=min_freq
                        )
                        for backend in backends:
                            got = [
                                (m.pattern, m.frequency)
                                for m in backend.search(
                                    tokens, min_freq=min_freq
                                )
                            ]
                            assert got == floored, (
                                f"{context} min_freq={min_freq} "
                                f"backend={type(backend).__name__}: "
                                f"{got!r} != oracle {floored!r}"
                            )
                        sigma_cases += 1

                    # limit must be a plain prefix of the full ranking
                    if expected:
                        cut = rng.randint(1, len(expected))
                        for backend in backends:
                            prefix = [
                                (m.pattern, m.frequency)
                                for m in backend.search(tokens, limit=cut)
                            ]
                            assert prefix == expected[:cut], context
                    cases += 1
                for backend in backends:
                    for path, count in backend.plan_stats()["paths"].items():
                        paths_total[path] += count
        except AssertionError as exc:
            raise AssertionError(
                str(exc)
                + _dump_replay_bundle(
                    database, hierarchy, params, str(exc)
                )
            ) from exc
    assert cases >= 300, f"only {cases} differential cases executed"
    assert sigma_cases >= 50, f"only {sigma_cases} σ-override cases executed"
    assert dense_cases >= 60, (
        f"only {dense_cases} gap/adjacency-dense queries executed"
    )
    assert kinds_covered == set(KINDS), (
        f"token kinds never generated: {set(KINDS) - kinds_covered}"
    )
    # the accelerator's fast paths actually ran: positional backends
    # answered exactly (no DP), the v1 backend pruned with the bitset
    assert paths_total["exact"] > 0, f"exact path never taken: {paths_total}"
    assert paths_total["pruned"] > 0, f"pruned path never taken: {paths_total}"


def test_planner_orderings_and_strategies_differential(tmp_path):
    """Every choice the cost planner can make is answer-invariant.

    For random mined instances, every combination of node ordering
    (``cost``/``cardinality``/``worst``) and forced execution strategy
    (``exact``/``pruned``/``scan`` plus estimate-driven ``None``) must
    return the same ranked answers as the unaccelerated legacy matcher
    — on the in-memory index, the positional store file, a fabricated
    version-1 store, and the sharded store.  This is the guarantee that
    lets admission control trust the estimate: the planner can only
    change *speed*, never answers.
    """
    from repro.query.cost import PLAN_ORDERS, PLAN_STRATEGIES

    def set_accelerate(backend, enabled):
        # only the sharded store has a propagating setter
        if hasattr(backend, "set_accelerate"):
            backend.set_accelerate(enabled)
        else:
            backend._accelerate = enabled

    rng = random.Random(SEED + 4)
    compared = 0
    strategies_run: set[str] = set()
    for instance in range(max(3, N_INSTANCES // 8)):
        hierarchy = _random_hierarchy(rng)
        database = _random_database(rng, list(hierarchy.items))
        params = MiningParams(
            sigma=rng.randint(1, 2),
            gamma=rng.choice([0, 1, 2, None]),
            lam=rng.randint(2, 4),
        )
        result = Lash(params).mine(database, hierarchy)
        patterns, vocab = result.patterns, result.vocabulary
        index = PatternIndex(patterns, vocab)
        single_path = tmp_path / f"p{instance}.store"
        result.to_store(single_path)
        sharded_path = tmp_path / f"p{instance}.shards"
        result.to_store(sharded_path, shards=rng.randint(2, 3))
        legacy_path = tmp_path / f"p{instance}.v1.store"
        write_store(legacy_path, patterns, vocab, store_version=1)
        with open_store(single_path) as single, open_store(
            sharded_path
        ) as sharded, open_store(legacy_path) as legacy:
            backends = [index, single, sharded, legacy]
            for q in range(QUERIES_PER_INSTANCE):
                tokens = _random_query(rng, vocab, KINDS[q % len(KINDS)])
                reference = None
                for backend in backends:
                    set_accelerate(backend, False)
                    got = [
                        (m.pattern, m.frequency)
                        for m in backend.search(tokens)
                    ]
                    set_accelerate(backend, True)
                    if reference is None:
                        reference = got
                    assert got == reference, (
                        f"seed={SEED + 4} instance={instance} "
                        f"query={_render_query(tokens)!r} legacy path "
                        f"disagrees on {type(backend).__name__}"
                    )
                for order in PLAN_ORDERS:
                    for strategy in (None, *PLAN_STRATEGIES):
                        for backend in backends:
                            backend.set_planner(order, strategy)
                            strategies_run.add(
                                backend.explain(tokens)["strategy"]
                            )
                            got = [
                                (m.pattern, m.frequency)
                                for m in backend.search(tokens)
                            ]
                            assert got == reference, (
                                f"seed={SEED + 4} instance={instance} "
                                f"query={_render_query(tokens)!r} "
                                f"order={order} strategy={strategy} "
                                f"backend={type(backend).__name__}: "
                                f"{got!r} != legacy {reference!r}"
                            )
                            compared += 1
                for backend in backends:
                    backend.set_planner()
    assert compared >= 300, f"only {compared} planner cases executed"
    ran = strategies_run & set(PLAN_STRATEGIES)
    assert ran == set(PLAN_STRATEGIES), (
        f"strategies never exercised: {set(PLAN_STRATEGIES) - ran}"
    )


def test_plan_pruning_is_superset_of_matches(tmp_path):
    """Stage-1 plan pruning never drops a true match.

    For random queries over random mined instances, the candidate set
    the compiled plan admits (bitset AND of the chain nodes' postings,
    or the wildcard length scan) must be a **superset** of the indexes
    the reference DP accepts — on the positional in-memory index, the
    positional store file, and a fabricated version-1 store.  This is
    the safety property behind the verified fallback: pruning may
    over-admit (the DP cleans up), it must never under-admit.
    """
    rng = random.Random(SEED + 1)
    checked = 0
    for instance in range(max(4, N_INSTANCES // 4)):
        hierarchy = _random_hierarchy(rng)
        database = _random_database(rng, list(hierarchy.items))
        params = MiningParams(
            sigma=rng.randint(1, 2),
            gamma=rng.choice([0, 1, 2, None]),
            lam=rng.randint(2, 4),
        )
        result = Lash(params).mine(database, hierarchy)
        patterns, vocab = result.patterns, result.vocabulary
        index = PatternIndex(patterns, vocab)
        single_path = tmp_path / f"s{instance}.store"
        result.to_store(single_path)
        legacy_path = tmp_path / f"s{instance}.v1.store"
        write_store(legacy_path, patterns, vocab, store_version=1)
        with open_store(single_path) as single, open_store(
            legacy_path
        ) as legacy:
            for q in range(QUERIES_PER_INSTANCE):
                tokens = _random_query(rng, vocab, KINDS[q % len(KINDS)])
                for backend in (index, single, legacy):
                    compiled = backend._compile(normalize_query(tokens))
                    admitted = backend._plan_candidate_indexes(compiled)
                    true_matches = {
                        idx
                        for idx in range(backend._num_patterns())
                        if backend._matches(
                            compiled, backend._pattern_at(idx)[0]
                        )
                    }
                    context = (
                        f"seed={SEED + 1} instance={instance} "
                        f"query={_render_query(tokens)!r} "
                        f"backend={type(backend).__name__}"
                    )
                    if admitted is None:
                        continue  # unrestricted: trivially a superset
                    dropped = true_matches - set(admitted)
                    assert not dropped, (
                        f"{context}: pruning dropped true matches {dropped}"
                    )
                    checked += 1
    assert checked >= 100, f"only {checked} superset cases executed"


def test_canonicalization_differential(tmp_path):
    """``normalize_query(q)`` is semantics-preserving and cache-unifying.

    For random queries: the raw token tuple and its normalized form
    return identical ranked answers from all three backends, and the
    two string spellings share a single :class:`QueryService` cache
    entry (the second lookup is a cache *hit* — checked through the
    hits counter, so a key regression cannot slip through as a silent
    recompute).
    """
    rng = random.Random(SEED + 2)
    checked = 0
    rewritten = 0
    cache_checked = 0
    for instance in range(4):
        hierarchy = _random_hierarchy(rng)
        database = _random_database(rng, list(hierarchy.items))
        result = Lash(
            MiningParams(sigma=1, gamma=rng.choice([1, None]), lam=3)
        ).mine(database, hierarchy)
        index = PatternIndex(result.patterns, result.vocabulary)
        single_path = tmp_path / f"c{instance}.store"
        result.to_store(single_path)
        sharded_path = tmp_path / f"c{instance}.shards"
        result.to_store(sharded_path, shards=2)
        service = QueryService(index)
        with open_store(single_path) as single, open_store(
            sharded_path
        ) as sharded:
            for q in range(30):
                tokens = _random_query(
                    rng, result.vocabulary, KINDS[q % len(KINDS)]
                )
                normalized = normalize_query(tokens)
                rewritten += normalized != tokens
                context = (
                    f"seed={SEED + 2} instance={instance} "
                    f"query={_render_query(tokens)!r} "
                    f"normalized={_render_query(normalized)!r}"
                )
                for backend in (index, single, sharded):
                    raw = [
                        (m.pattern, m.frequency)
                        for m in backend.search(tokens)
                    ]
                    canon = [
                        (m.pattern, m.frequency)
                        for m in backend.search(normalized)
                    ]
                    assert raw == canon, (
                        f"{context} backend={type(backend).__name__}: "
                        f"{raw!r} != {canon!r}"
                    )
                checked += 1
                if is_negation_only(normalized):
                    continue  # the service refuses these by design
                service.query(_render_query(tokens))
                hits_before = service.stats()["cache_hits"]
                service.query(_render_query(normalized))
                assert service.stats()["cache_hits"] == hits_before + 1, (
                    f"{context}: normalized spelling missed the cache "
                    "entry of the raw spelling"
                )
                cache_checked += 1
    assert checked >= 80, f"only {checked} canonicalization cases executed"
    assert rewritten >= 10, (
        f"only {rewritten} queries were actually rewritten — generator "
        "too tame to exercise the canonicalizer"
    )
    assert cache_checked >= 50, (
        f"only {cache_checked} cache-unification cases executed"
    )


def test_differential_router_backend(tmp_path):
    """The distributed tier joins the evaluate-everywhere discipline.

    Random instances are served by a **router** fanning out over two
    half-cluster shard servers plus one full replica (socket protocol,
    k-way merge), and every random query must come back byte-identical
    to the single-process :class:`ShardedPatternStore` over the same
    manifest — then both half servers are killed, leaving each shard
    exactly one live replica, and the same queries must *still* match
    byte for byte with no partial-result flag: failover, not the
    answer, absorbs the failure.

    Two routers run side by side over the same cluster: one on the
    pipelined, compressed mux wire (the default) and one pinned to
    legacy one-request-per-connection framing — the wire format must
    never leak into results, healthy or degraded.
    """
    from repro.serve.distributed import ShardServer
    from repro.serve.router import ClusterMap, RouterBackend, ServerSpec

    rng = random.Random(SEED + 3)
    compared = 0
    failover_compared = 0
    for instance in range(max(3, N_INSTANCES // 8)):
        hierarchy = _random_hierarchy(rng)
        database = _random_database(rng, list(hierarchy.items))
        params = MiningParams(
            sigma=rng.randint(1, 2),
            gamma=rng.choice([1, None]),
            lam=rng.randint(2, 4),
        )
        result = Lash(params).mine(database, hierarchy)
        vocab = result.vocabulary
        num_shards = rng.randint(2, 4)
        sharded_path = tmp_path / f"r{instance}.shards"
        result.to_store(sharded_path, shards=num_shards)
        half = num_shards // 2 or 1
        lower, upper = list(range(half)), list(range(half, num_shards))

        servers = [
            ShardServer(sharded_path, shard_subset=lower, http_port=None),
            ShardServer(
                sharded_path, shard_subset=upper or None, http_port=None
            ),
            ShardServer(sharded_path, http_port=None),  # full replica
        ]
        router = legacy_router = None
        try:
            for server in servers:
                server.start()
            placement = {}
            specs = []
            for server, shards in zip(
                servers, (lower, upper or lower, range(num_shards))
            ):
                spec = ServerSpec(*server.address)
                specs.append(spec)
                for shard in shards:
                    placement.setdefault(shard, []).append(spec.key)
            cluster = ClusterMap(
                specs, num_shards=num_shards, placement=placement
            )
            router = RouterBackend(
                cluster, pipeline_depth=rng.randint(1, 8)
            )
            legacy_router = RouterBackend(cluster, wire="legacy")
            with open_store(sharded_path) as mono:
                queries = []
                for q in range(QUERIES_PER_INSTANCE):
                    tokens = _random_query(rng, vocab, KINDS[q % len(KINDS)])
                    if is_negation_only(normalize_query(tokens)):
                        continue  # the serving tier refuses these
                    queries.append(tokens)

                def compare(tokens, phase):
                    context = (
                        f"seed={SEED + 3} instance={instance} "
                        f"phase={phase} query={_render_query(tokens)!r}"
                    )
                    expected = [
                        (m.pattern, m.frequency)
                        for m in mono.search(tokens)
                    ]
                    got = [
                        (m.pattern, m.frequency)
                        for m in router.search(tokens)
                    ]
                    assert got == expected, (
                        f"{context}: {got!r} != mono {expected!r}"
                    )
                    assert router.take_partial() is None, context
                    via_legacy = [
                        (m.pattern, m.frequency)
                        for m in legacy_router.search(tokens)
                    ]
                    assert via_legacy == expected, (
                        f"{context} wire=legacy: "
                        f"{via_legacy!r} != mono {expected!r}"
                    )
                    assert legacy_router.take_partial() is None, context
                    if expected:
                        cut = rng.randint(1, len(expected))
                        prefix = [
                            (m.pattern, m.frequency)
                            for m in router.search(tokens, limit=cut)
                        ]
                        assert prefix == expected[:cut], context
                    min_freq = _random_min_freq(rng, result.patterns)
                    floored = [
                        (m.pattern, m.frequency)
                        for m in mono.search(tokens, min_freq=min_freq)
                    ]
                    got_floored = [
                        (m.pattern, m.frequency)
                        for m in router.search(tokens, min_freq=min_freq)
                    ]
                    assert got_floored == floored, (
                        f"{context} min_freq={min_freq}: "
                        f"{got_floored!r} != mono {floored!r}"
                    )

                for tokens in queries:
                    compare(tokens, "healthy")
                    compared += 1
                assert len(router) == len(mono)
                # the default router actually negotiated the mux wire
                pipeline = router.describe()["pipeline"]
                assert pipeline["wire"] == "auto"
                assert router.describe()["wire"]["frames_sent"] > 0

                # one replica down per shard: both half servers die,
                # the full replica carries every shard
                servers[0].stop()
                servers[1].stop()
                for tokens in queries:
                    compare(tokens, "failover")
                    failover_compared += 1
        finally:
            if router is not None:
                router.close()
            if legacy_router is not None:
                legacy_router.close()
            for server in servers:
                server.stop()
    assert compared >= 20, f"only {compared} router cases executed"
    assert failover_compared >= 20, (
        f"only {failover_compared} failover cases executed"
    )


def test_differential_error_equivalence(tmp_path):
    """Invalid queries fail identically — same exception type — on
    every backend, so a serving tier swap cannot change the API's
    error contract."""
    rng = random.Random(SEED + 1)
    hierarchy = _random_hierarchy(rng)
    database = _random_database(rng, list(hierarchy.items))
    result = Lash(MiningParams(sigma=1, gamma=1, lam=3)).mine(
        database, hierarchy
    )
    index = PatternIndex(result.patterns, result.vocabulary)
    single_path = tmp_path / "err.store"
    result.to_store(single_path)
    sharded_path = tmp_path / "err.shards"
    result.to_store(sharded_path, shards=2)
    with open_store(single_path) as single, open_store(
        sharded_path
    ) as sharded:
        for query in [
            "no-such-item ?",
            "(i0|no-such-item)",
            "^no-such-item@2",
            "!no-such-item i0",
            "!^no-such-item i0",
        ]:
            for backend in (index, single, sharded):
                with pytest.raises(UnknownItemError):
                    backend.search(query)
