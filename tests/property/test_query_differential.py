"""Differential fuzzing of the query language across all backends.

The evaluate-everywhere-and-compare discipline: random hierarchies,
databases and queries (drawn from all seven token kinds — item,
``^name``, ``?``, ``+``, ``*``, ``(a|b|^C)`` disjunction, ``token@N``
frequency floor) are answered by four implementations that must agree
byte for byte on the ranked ``(pattern, frequency)`` list:

* a naive oracle — backtracking matcher over the raw pattern mapping,
  no compiled form, no postings, no candidate pruning;
* :class:`~repro.query.index.PatternIndex` — in-memory, inverted index;
* :class:`~repro.serve.store.PatternStore` — single mmap'd store file;
* :class:`~repro.serve.sharded.ShardedPatternStore` — k-way heap merge
  over shard files.

``LASH_DIFF_SEED`` reseeds the generator (CI runs the fixed default
plus one randomized seed per build); ``LASH_DIFF_INSTANCES`` scales the
number of mined instances.  Every failure message carries the seed,
instance and query needed to replay it.
"""

from __future__ import annotations

import os
import random

import pytest

from repro import Hierarchy, Lash, MiningParams, SequenceDatabase
from repro.errors import UnknownItemError
from repro.query import PatternIndex, parse_query
from repro.query.tokens import (
    AnyToken,
    FloorToken,
    ItemToken,
    OneOfToken,
    PlusToken,
    QueryToken,
    SpanToken,
    UnderToken,
)
from repro.serve import open_store

SEED = int(os.environ.get("LASH_DIFF_SEED", "20260729"))
N_INSTANCES = int(os.environ.get("LASH_DIFF_INSTANCES", "24"))
QUERIES_PER_INSTANCE = 10

KINDS = ("item", "under", "any", "plus", "span", "oneof", "floor")


# ----------------------------------------------------------------------
# the oracle: brute-force matching over the raw pattern mapping
# ----------------------------------------------------------------------


def _oracle_token_matches(token: QueryToken, item: int, vocab) -> bool:
    """Does this single-item token admit the item?  Hierarchy facts come
    from the *string-level* hierarchy, not the backends' id-level caches.
    """
    if isinstance(token, AnyToken):
        return True
    if isinstance(token, ItemToken):
        return vocab.name(item) == token.name
    if isinstance(token, UnderToken):
        return token.name in vocab.hierarchy.ancestors_or_self(
            vocab.name(item)
        )
    if isinstance(token, OneOfToken):
        return any(
            _oracle_token_matches(choice, item, vocab)
            for choice in token.choices
        )
    if isinstance(token, FloorToken):
        return vocab.frequency(item) >= token.floor and _oracle_token_matches(
            token.inner, item, vocab
        )
    raise AssertionError(f"oracle cannot match {token!r}")


def _oracle_match(tokens, pattern, vocab) -> bool:
    """Backtracking recursion — deliberately nothing like the DP in
    :meth:`PatternSearchBase._matches`."""

    def rec(i: int, j: int) -> bool:
        if i == len(tokens):
            return j == len(pattern)
        token = tokens[i]
        if isinstance(token, SpanToken):
            return any(rec(i + 1, k) for k in range(j, len(pattern) + 1))
        if isinstance(token, PlusToken):
            return any(rec(i + 1, k) for k in range(j + 1, len(pattern) + 1))
        return (
            j < len(pattern)
            and _oracle_token_matches(token, pattern[j], vocab)
            and rec(i + 1, j + 1)
        )

    return rec(0, 0)


def _oracle_search(patterns, vocab, tokens):
    """Ranked (decoded pattern, frequency) hits, most frequent first,
    ties by coded pattern ascending — the shared index order, re-stated
    here independently."""
    hits = [
        (coded, freq)
        for coded, freq in patterns.items()
        if _oracle_match(tokens, coded, vocab)
    ]
    hits.sort(key=lambda record: (-record[1], record[0]))
    return [(vocab.decode_sequence(coded), freq) for coded, freq in hits]


# ----------------------------------------------------------------------
# random instances and queries
# ----------------------------------------------------------------------


def _random_hierarchy(rng: random.Random) -> Hierarchy:
    """A random forest with occasional extra DAG edges."""
    n = rng.randint(3, 9)
    names = [f"i{k}" for k in range(n)]
    hierarchy = Hierarchy()
    for idx, name in enumerate(names):
        parent = None
        if idx and rng.random() < 0.6:
            parent = names[rng.randrange(idx)]
        hierarchy.add_item(name, parent)
    for idx in range(2, n):
        if rng.random() < 0.15:
            candidate = names[rng.randrange(idx)]
            if candidate not in hierarchy.ancestors_or_self(names[idx]):
                hierarchy.add_edge(names[idx], candidate)
    return hierarchy


def _random_database(rng: random.Random, names) -> SequenceDatabase:
    return SequenceDatabase(
        [
            [rng.choice(names) for _ in range(rng.randint(1, 6))]
            for _ in range(rng.randint(2, 10))
        ]
    )


def _random_name(rng: random.Random, vocab) -> str:
    return vocab.name(rng.randrange(len(vocab)))


def _random_single_token(rng: random.Random, vocab, kind: str) -> QueryToken:
    if kind == "item":
        return ItemToken(_random_name(rng, vocab))
    if kind == "under":
        return UnderToken(_random_name(rng, vocab))
    if kind == "any":
        return AnyToken()
    if kind == "oneof":
        return OneOfToken(
            tuple(
                _random_single_token(
                    rng, vocab, rng.choice(("item", "under"))
                )
                for _ in range(rng.randint(1, 3))
            )
        )
    assert kind == "floor"
    inner = _random_single_token(
        rng, vocab, rng.choice(("item", "under", "any", "oneof"))
    )
    # floors drawn around real corpus frequencies so some pass, some cut
    anchor = vocab.frequency(rng.randrange(len(vocab)))
    return FloorToken(inner, max(0, anchor + rng.randint(-1, 2)))


def _random_query(
    rng: random.Random, vocab, required_kind: str
) -> tuple[QueryToken, ...]:
    """1–4 tokens, at least one of ``required_kind`` (cycling the
    requirement over all seven kinds guarantees full coverage even on
    unlucky seeds)."""
    length = rng.randint(1, 4)
    kinds = [rng.choice(KINDS) for _ in range(length)]
    kinds[rng.randrange(length)] = required_kind
    tokens = []
    for kind in kinds:
        if kind == "plus":
            tokens.append(PlusToken())
        elif kind == "span":
            tokens.append(SpanToken())
        else:
            tokens.append(_random_single_token(rng, vocab, kind))
    return tuple(tokens)


def _render_token(token: QueryToken) -> str:
    """The string syntax for a token (all generated names are
    syntax-safe ``i<k>`` identifiers)."""
    if isinstance(token, ItemToken):
        return token.name
    if isinstance(token, UnderToken):
        return f"^{token.name}"
    if isinstance(token, AnyToken):
        return "?"
    if isinstance(token, PlusToken):
        return "+"
    if isinstance(token, SpanToken):
        return "*"
    if isinstance(token, OneOfToken):
        return "(" + "|".join(_render_token(c) for c in token.choices) + ")"
    assert isinstance(token, FloorToken)
    return f"{_render_token(token.inner)}@{token.floor}"


def _token_kinds(tokens) -> set[str]:
    kinds: set[str] = set()
    for token in tokens:
        if isinstance(token, ItemToken):
            kinds.add("item")
        elif isinstance(token, UnderToken):
            kinds.add("under")
        elif isinstance(token, AnyToken):
            kinds.add("any")
        elif isinstance(token, PlusToken):
            kinds.add("plus")
        elif isinstance(token, SpanToken):
            kinds.add("span")
        elif isinstance(token, OneOfToken):
            kinds.add("oneof")
        elif isinstance(token, FloorToken):
            kinds.add("floor")
    return kinds


# ----------------------------------------------------------------------
# the harness
# ----------------------------------------------------------------------


def test_differential_oracle_vs_all_backends(tmp_path):
    rng = random.Random(SEED)
    cases = 0
    kinds_covered: set[str] = set()
    for instance in range(N_INSTANCES):
        hierarchy = _random_hierarchy(rng)
        database = _random_database(rng, list(hierarchy.items))
        params = MiningParams(
            sigma=rng.randint(1, 2),
            gamma=rng.choice([0, 1, 2, None]),
            lam=rng.randint(2, 4),
        )
        result = Lash(params).mine(database, hierarchy)
        patterns, vocab = result.patterns, result.vocabulary

        index = PatternIndex(patterns, vocab)
        single_path = tmp_path / f"i{instance}.store"
        result.to_store(single_path)
        sharded_path = tmp_path / f"i{instance}.shards"
        result.to_store(sharded_path, shards=rng.randint(2, 4))

        with open_store(single_path) as single, open_store(
            sharded_path
        ) as sharded:
            backends = [index, single, sharded]
            for q in range(QUERIES_PER_INSTANCE):
                tokens = _random_query(rng, vocab, KINDS[q % len(KINDS)])
                kinds_covered |= _token_kinds(tokens)
                context = (
                    f"seed={SEED} instance={instance} "
                    f"query={' '.join(_render_token(t) for t in tokens)!r}"
                )

                # the string syntax round-trips to the generated tokens
                assert parse_query(
                    " ".join(_render_token(t) for t in tokens)
                ) == tokens, context

                expected = _oracle_search(patterns, vocab, tokens)
                for backend in backends:
                    got = [
                        (m.pattern, m.frequency)
                        for m in backend.search(tokens)
                    ]
                    assert got == expected, (
                        f"{context} backend={type(backend).__name__}: "
                        f"{got!r} != oracle {expected!r}"
                    )

                # limit must be a plain prefix of the full ranking
                if expected:
                    cut = rng.randint(1, len(expected))
                    for backend in backends:
                        prefix = [
                            (m.pattern, m.frequency)
                            for m in backend.search(tokens, limit=cut)
                        ]
                        assert prefix == expected[:cut], context
                cases += 1
    assert cases >= 200, f"only {cases} differential cases executed"
    assert kinds_covered == set(KINDS), (
        f"token kinds never generated: {set(KINDS) - kinds_covered}"
    )


def test_differential_error_equivalence(tmp_path):
    """Invalid queries fail identically — same exception type — on
    every backend, so a serving tier swap cannot change the API's
    error contract."""
    rng = random.Random(SEED + 1)
    hierarchy = _random_hierarchy(rng)
    database = _random_database(rng, list(hierarchy.items))
    result = Lash(MiningParams(sigma=1, gamma=1, lam=3)).mine(
        database, hierarchy
    )
    index = PatternIndex(result.patterns, result.vocabulary)
    single_path = tmp_path / "err.store"
    result.to_store(single_path)
    sharded_path = tmp_path / "err.shards"
    result.to_store(sharded_path, shards=2)
    with open_store(single_path) as single, open_store(
        sharded_path
    ) as sharded:
        for query in [
            "no-such-item ?",
            "(i0|no-such-item)",
            "^no-such-item@2",
        ]:
            for backend in (index, single, sharded):
                with pytest.raises(UnknownItemError):
                    backend.search(query)
