"""Hypothesis round-trip tests for the repro.io file formats."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SequenceDatabase
from repro.io import (
    read_database,
    read_hierarchy,
    read_patterns,
    write_database,
    write_hierarchy,
    write_patterns,
)
from tests.property.strategies import dag_hierarchies, forest_hierarchies

SETTINGS = settings(max_examples=25, deadline=None)

# item names must survive whitespace-separated text formats
_item = st.text(
    alphabet=st.characters(
        codec="utf-8", exclude_characters=" \t\n\r", categories=("L", "N", "P", "S")
    ),
    min_size=1,
    max_size=8,
)


@SETTINGS
@given(
    st.lists(
        st.lists(_item, min_size=1, max_size=6), min_size=0, max_size=10
    )
)
def test_database_roundtrip(tmp_path_factory, sequences):
    path = tmp_path_factory.mktemp("io") / "db.txt"
    db = SequenceDatabase(sequences)
    write_database(db, path)
    assert list(read_database(path)) == [tuple(s) for s in sequences]


@SETTINGS
@given(forest_hierarchies(max_items=10))
def test_hierarchy_tsv_roundtrip(tmp_path_factory, hierarchy):
    path = tmp_path_factory.mktemp("io") / "h.tsv"
    write_hierarchy(hierarchy, path)
    got = read_hierarchy(path)
    assert set(got.items) == set(hierarchy.items)
    for item in hierarchy:
        assert got.parents(item) == hierarchy.parents(item)


@SETTINGS
@given(dag_hierarchies(max_items=8))
def test_hierarchy_json_roundtrip_dag(tmp_path_factory, hierarchy):
    path = tmp_path_factory.mktemp("io") / "h.json"
    write_hierarchy(hierarchy, path)
    got = read_hierarchy(path)
    for item in hierarchy:
        assert set(got.parents(item)) == set(hierarchy.parents(item))
        assert set(got.ancestors_or_self(item)) == set(
            hierarchy.ancestors_or_self(item)
        )


@SETTINGS
@given(
    st.dictionaries(
        st.lists(_item, min_size=1, max_size=4).map(tuple),
        st.integers(1, 10**9),
        max_size=12,
    )
)
def test_patterns_roundtrip(tmp_path_factory, patterns):
    path = tmp_path_factory.mktemp("io") / "p.tsv"
    write_patterns(patterns, path)
    assert read_patterns(path) == patterns
