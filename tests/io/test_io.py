"""Round-trip and error-path tests for the repro.io file formats."""

import gzip

import pytest

from repro import Hierarchy, Lash, MiningParams, SequenceDatabase, mine
from repro.errors import EncodingError, HierarchyError
from repro.hierarchy import build_vocabulary
from repro.io import (
    open_text,
    read_database,
    read_hierarchy,
    read_patterns,
    read_vocabulary,
    write_database,
    write_hierarchy,
    write_patterns,
    write_vocabulary,
)


class TestOpenText:
    def test_plain_roundtrip(self, tmp_path):
        path = tmp_path / "x.txt"
        with open_text(path, "w") as f:
            f.write("héllo\n")
        with open_text(path) as f:
            assert f.read() == "héllo\n"

    def test_gzip_roundtrip(self, tmp_path):
        path = tmp_path / "x.txt.gz"
        with open_text(path, "w") as f:
            f.write("compressed\n")
        with gzip.open(path, "rt", encoding="utf-8") as f:
            assert f.read() == "compressed\n"

    def test_invalid_mode(self, tmp_path):
        with pytest.raises(ValueError):
            open_text(tmp_path / "x.txt", "a")


class TestDatabaseIo:
    def test_roundtrip(self, tmp_path, fig1_database):
        path = tmp_path / "db.txt"
        write_database(fig1_database, path)
        assert read_database(path) == fig1_database

    def test_gzip_roundtrip(self, tmp_path, fig1_database):
        path = tmp_path / "db.txt.gz"
        write_database(fig1_database, path)
        assert read_database(path) == fig1_database

    def test_custom_separator(self, tmp_path):
        db = SequenceDatabase([["a", "b"], ["c"]])
        path = tmp_path / "db.csv"
        write_database(db, path, sep=",")
        assert read_database(path, sep=",") == db

    def test_empty_lines_skipped(self, tmp_path):
        path = tmp_path / "db.txt"
        path.write_text("a b\n\n\nc\n", encoding="utf-8")
        assert list(read_database(path)) == [("a", "b"), ("c",)]


class TestHierarchyIo:
    def test_tsv_roundtrip(self, tmp_path, fig1_hierarchy):
        path = tmp_path / "h.tsv"
        write_hierarchy(fig1_hierarchy, path)
        got = read_hierarchy(path)
        assert set(got.items) == set(fig1_hierarchy.items)
        for item in fig1_hierarchy:
            assert got.parents(item) == fig1_hierarchy.parents(item)

    def test_json_roundtrip(self, tmp_path, fig1_hierarchy):
        path = tmp_path / "h.json"
        write_hierarchy(fig1_hierarchy, path)
        got = read_hierarchy(path)
        for item in fig1_hierarchy:
            assert got.parents(item) == fig1_hierarchy.parents(item)

    def test_json_gz_roundtrip(self, tmp_path, fig1_hierarchy):
        path = tmp_path / "h.json.gz"
        write_hierarchy(fig1_hierarchy, path)
        got = read_hierarchy(path)
        assert set(got.items) == set(fig1_hierarchy.items)

    def test_json_dag(self, tmp_path):
        h = Hierarchy()
        for root in ("B", "D"):
            h.add_item(root)
        h.add_item("multi")
        h.add_edge("multi", "B")
        h.add_edge("multi", "D")
        path = tmp_path / "dag.json"
        write_hierarchy(h, path)
        got = read_hierarchy(path)
        assert set(got.parents("multi")) == {"B", "D"}

    def test_json_string_parent_accepted(self, tmp_path):
        path = tmp_path / "h.json"
        path.write_text('{"B": [], "b1": "B"}', encoding="utf-8")
        got = read_hierarchy(path)
        assert got.parents("b1") == ("B",)

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "h.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(HierarchyError):
            read_hierarchy(path)

    def test_json_non_object_rejected(self, tmp_path):
        path = tmp_path / "h.json"
        path.write_text("[1, 2]", encoding="utf-8")
        with pytest.raises(HierarchyError):
            read_hierarchy(path)


class TestVocabularyIo:
    def test_roundtrip_preserves_ids_and_frequencies(
        self, tmp_path, fig1_database, fig1_hierarchy
    ):
        vocabulary = build_vocabulary(fig1_database, fig1_hierarchy)
        path = tmp_path / "flist.tsv"
        write_vocabulary(vocabulary, path)
        got = read_vocabulary(path, fig1_hierarchy)
        assert len(got) == len(vocabulary)
        for item_id in range(len(vocabulary)):
            assert got.name(item_id) == vocabulary.name(item_id)
            assert got.frequency(item_id) == vocabulary.frequency(item_id)

    def test_reused_vocabulary_mines_identically(
        self, tmp_path, fig1_database, fig1_hierarchy
    ):
        """Sec. 3.4: the persisted f-list replaces preprocessing."""
        vocabulary = build_vocabulary(fig1_database, fig1_hierarchy)
        path = tmp_path / "flist.tsv"
        write_vocabulary(vocabulary, path)
        reloaded = read_vocabulary(path, fig1_hierarchy)
        params = MiningParams(2, 1, 3)
        fresh = Lash(params).mine(fig1_database, fig1_hierarchy)
        reused = Lash(params).mine(fig1_database, vocabulary=reloaded)
        assert reused.preprocess_job is None
        assert reused.decoded() == fresh.decoded()

    def test_malformed_line_rejected(self, tmp_path, fig1_hierarchy):
        path = tmp_path / "flist.tsv"
        path.write_text("a\tnot-a-number\n", encoding="utf-8")
        with pytest.raises(EncodingError):
            read_vocabulary(path, fig1_hierarchy)


class TestPatternsIo:
    def test_roundtrip_from_result(
        self, tmp_path, fig1_database, fig1_hierarchy
    ):
        result = mine(fig1_database, fig1_hierarchy, sigma=2, gamma=1, lam=3)
        path = tmp_path / "patterns.tsv"
        write_patterns(result, path)
        assert read_patterns(path) == result.decoded()

    def test_roundtrip_from_mapping(self, tmp_path):
        patterns = {("a", "B"): 3, ("a",): 5}
        path = tmp_path / "patterns.tsv.gz"
        write_patterns(patterns, path)
        assert read_patterns(path) == patterns

    def test_sorted_most_frequent_first(self, tmp_path):
        path = tmp_path / "patterns.tsv"
        write_patterns({("b",): 1, ("a",): 9}, path)
        lines = path.read_text(encoding="utf-8").splitlines()
        assert lines[0] == "a\t9"

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "patterns.tsv"
        path.write_text("a b\tNaN\n", encoding="utf-8")
        with pytest.raises(EncodingError):
            read_patterns(path)
