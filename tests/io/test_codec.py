"""Round-trip tests for the store's varint/zigzag/delta primitives."""

import pytest

from repro.errors import EncodingError
from repro.io.codec import (
    read_deltas,
    read_sequence,
    read_uvarint,
    section_checksum,
    write_deltas,
    write_sequence,
    write_uvarint,
    zigzag_decode,
    zigzag_encode,
)


class TestUvarint:
    @pytest.mark.parametrize(
        "value", [0, 1, 127, 128, 255, 300, 16383, 16384, 2**32, 2**60]
    )
    def test_roundtrip(self, value):
        buf = bytearray()
        write_uvarint(buf, value)
        decoded, end = read_uvarint(bytes(buf), 0)
        assert decoded == value
        assert end == len(buf)

    def test_single_byte_below_128(self):
        buf = bytearray()
        write_uvarint(buf, 127)
        assert len(buf) == 1

    def test_negative_rejected(self):
        with pytest.raises(EncodingError):
            write_uvarint(bytearray(), -1)

    def test_truncated_rejected(self):
        buf = bytearray()
        write_uvarint(buf, 300)
        with pytest.raises(EncodingError):
            read_uvarint(bytes(buf[:-1]), 0)

    def test_many_concatenated(self):
        values = list(range(0, 1000, 7))
        buf = bytearray()
        for value in values:
            write_uvarint(buf, value)
        out, offset = [], 0
        while offset < len(buf):
            value, offset = read_uvarint(bytes(buf), offset)
            out.append(value)
        assert out == values


class TestZigzag:
    @pytest.mark.parametrize(
        "value",
        [0, 1, -1, 2, -2, 63, -64, 10**9, -(10**9), 2**63, -(2**63)],
    )
    def test_roundtrip(self, value):
        assert zigzag_decode(zigzag_encode(value)) == value

    def test_small_magnitudes_stay_small(self):
        assert zigzag_encode(0) == 0
        assert zigzag_encode(-1) == 1
        assert zigzag_encode(1) == 2
        assert zigzag_encode(-2) == 3


class TestSequence:
    @pytest.mark.parametrize(
        "items",
        [(), (0,), (5, 5, 5), (9, 0, 9, 0), (3, 1, 4, 1, 5, 9, 2, 6)],
    )
    def test_roundtrip(self, items):
        buf = bytearray()
        write_sequence(buf, items)
        decoded, end = read_sequence(bytes(buf), 0)
        assert decoded == tuple(items)
        assert end == len(buf)

    def test_close_ids_pack_smaller_than_raw(self):
        # 5 ids near 1000: raw varints need 2 bytes each, deltas 1 byte
        items = (1000, 1001, 999, 1002, 1000)
        buf = bytearray()
        write_sequence(buf, items)
        raw = bytearray()
        write_uvarint(raw, len(items))
        for item in items:
            write_uvarint(raw, item)
        assert len(buf) < len(raw)


class TestDeltas:
    @pytest.mark.parametrize(
        "values", [[], [0], [7], [0, 1, 2], [3, 10, 1000, 10**6]]
    )
    def test_roundtrip(self, values):
        buf = bytearray()
        write_deltas(buf, values)
        assert read_deltas(bytes(buf), 0, len(buf)) == values

    def test_not_ascending_rejected(self):
        with pytest.raises(EncodingError):
            write_deltas(bytearray(), [3, 3])
        with pytest.raises(EncodingError):
            write_deltas(bytearray(), [5, 2])


class TestSectionChecksum:
    def test_slice_bounds(self):
        data = b"abcdefgh"
        assert section_checksum(data, 2, 5) == section_checksum(b"cde")
        assert section_checksum(data) == section_checksum(data, 0, len(data))

    def test_detects_any_byte_flip(self):
        data = bytearray(b"pattern store section bytes")
        reference = section_checksum(bytes(data))
        for i in range(len(data)):
            mutated = bytearray(data)
            mutated[i] ^= 0x01
            assert section_checksum(bytes(mutated)) != reference

    def test_accepts_bytearray_and_memoryview_sources(self):
        data = b"xyz" * 100
        assert (
            section_checksum(bytearray(data))
            == section_checksum(memoryview(data))
            == section_checksum(data)
        )
