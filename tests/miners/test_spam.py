"""Unit tests for the SPAM-style bitmap miner."""

import pytest

from repro import BruteForceMiner, MiningParams, SpamMiner
from repro.constants import BLANK
from repro.core import build_partitions


@pytest.fixture
def V(fig1_vocabulary):
    return fig1_vocabulary


def enc(V, *names):
    return tuple(V.id(n) if n != "_" else BLANK for n in names)


def decode(V, mined):
    return {tuple(V.name(i) for i in s): f for s, f in mined.items()}


class TestSpamBasics:
    PARAMS = MiningParams(sigma=2, gamma=1, lam=3)

    def test_only_pivot_sequences_output(self, V):
        partition = {enc(V, "a", "c", "a", "c"): 2}
        got = SpamMiner(V, self.PARAMS).mine_partition(partition, V.id("c"))
        assert got
        for seq in got:
            assert max(seq) == V.id("c")

    def test_empty_partition(self, V):
        assert SpamMiner(V, self.PARAMS).mine_partition({}, V.id("c")) == {}

    def test_weights_counted(self, V):
        params = MiningParams(sigma=3, gamma=0, lam=2)
        partition = {enc(V, "a", "c"): 3}
        got = decode(V, SpamMiner(V, params).mine_partition(partition, V.id("c")))
        assert got == {("a", "c"): 3}

    def test_respects_lambda(self, V):
        params = MiningParams(sigma=1, gamma=0, lam=2)
        partition = {enc(V, "a", "a", "c"): 1}
        got = SpamMiner(V, params).mine_partition(partition, V.id("c"))
        assert got and all(len(s) <= 2 for s in got)

    def test_hierarchy_expansion(self, V):
        """b1 occurrences must support B-level extensions and vice versa."""
        params = MiningParams(sigma=2, gamma=0, lam=2)
        partition = {enc(V, "a", "b1"): 1, enc(V, "a", "b2"): 1}
        got = decode(V, SpamMiner(V, params).mine_partition(partition, V.id("B")))
        assert got == {("a", "B"): 2}


class TestSpamGapSemantics:
    def test_blanks_count_toward_gap(self, V):
        params = MiningParams(sigma=1, gamma=0, lam=2)
        partition = {enc(V, "a", "_", "c"): 1}
        got = SpamMiner(V, params).mine_partition(partition, V.id("c"))
        assert decode(V, got) == {}

    def test_gap_window_bounded(self, V):
        params = MiningParams(sigma=1, gamma=1, lam=2)
        partition = {enc(V, "a", "_", "c"): 1}
        got = decode(V, SpamMiner(V, params).mine_partition(partition, V.id("c")))
        assert got == {("a", "c"): 1}

    def test_unbounded_gap(self, V):
        params = MiningParams(sigma=1, gamma=None, lam=3)
        partition = {enc(V, "a", "_", "_", "_", "_", "c"): 1}
        got = decode(V, SpamMiner(V, params).mine_partition(partition, V.id("c")))
        assert ("a", "c") in got

    def test_no_cross_sequence_leakage(self, V):
        """Shifted bits from one sequence must not reach the next one."""
        params = MiningParams(sigma=1, gamma=3, lam=2)
        # "a" ends sequence 1; "c" starts sequence 2 — never a pattern.
        partition = {enc(V, "c", "a"): 1, enc(V, "c", "c"): 1}
        got = decode(V, SpamMiner(V, params).mine_partition(partition, V.id("c")))
        assert ("a", "c") not in got

    def test_gap_pruning_disabled_with_bounded_gamma(self, V):
        """a·B·c at γ=0 is frequent while a·c is not: after a·c fails, the
        c-extension must still be retried on the child a·B (classic S-step
        pruning would drop it and lose a·B·c)."""
        params = MiningParams(sigma=1, gamma=0, lam=3)
        partition = {enc(V, "a", "B", "c"): 1}
        got = decode(
            V, SpamMiner(V, params).mine_partition(partition, V.id("c"))
        )
        assert ("a", "B", "c") in got
        assert ("a", "c") not in got


class TestSpamAgreement:
    @pytest.mark.parametrize("gamma", [0, 1, 2, None])
    def test_matches_brute_on_paper_partitions(self, V, fig1_database, gamma):
        params = MiningParams(sigma=2, gamma=gamma, lam=3)
        encoded = [V.encode_sequence(t) for t in fig1_database]
        partitions = build_partitions(V, encoded, params)
        for pivot, partition in partitions.items():
            spam = SpamMiner(V, params).mine_partition(partition, pivot)
            brute = BruteForceMiner(V, params).mine_partition(partition, pivot)
            assert spam == brute, V.name(pivot)

    def test_stats_track_candidates_and_outputs(self, V):
        params = MiningParams(sigma=1, gamma=1, lam=3)
        partition = {enc(V, "a", "c", "a"): 1}
        miner = SpamMiner(V, params)
        got = miner.mine_partition(partition, V.id("c"))
        assert miner.stats.outputs == len(got)
        assert miner.stats.candidates >= miner.stats.outputs


class TestSpamInLash:
    def test_lash_with_spam_matches_psm(self, fig1_database, fig1_hierarchy):
        from repro import Lash

        params = MiningParams(sigma=2, gamma=1, lam=3)
        psm = Lash(params, local_miner="psm").mine(fig1_database, fig1_hierarchy)
        spam = Lash(params, local_miner="spam").mine(
            fig1_database, fig1_hierarchy
        )
        assert psm.decoded() == spam.decoded()
        assert spam.algorithm == "lash[spam]"
