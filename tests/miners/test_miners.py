"""Unit tests for the BFS / DFS / brute local miners."""

import pytest

from repro import BfsMiner, BruteForceMiner, DfsMiner, MiningParams
from repro.constants import BLANK
from repro.miners.base import normalize_partition


@pytest.fixture
def V(fig1_vocabulary):
    return fig1_vocabulary


def enc(V, *names):
    return tuple(V.id(n) if n != "_" else BLANK for n in names)


def decode(V, mined):
    return {tuple(V.name(i) for i in s): f for s, f in mined.items()}


class TestNormalizePartition:
    def test_mapping(self):
        assert normalize_partition({(1, 2): 3}) == [((1, 2), 3)]

    def test_weighted_pairs(self):
        assert normalize_partition([((1, 2), 3)]) == [((1, 2), 3)]

    def test_bare_sequences(self):
        assert normalize_partition([(1, 2), (3, 4)]) == [
            ((1, 2), 1),
            ((3, 4), 1),
        ]

    def test_lists_coerced(self):
        assert normalize_partition([[1, 2]]) == [((1, 2), 1)]


class TestDfs:
    PARAMS = MiningParams(sigma=2, gamma=1, lam=3)

    def test_only_pivot_sequences_output(self, V):
        partition = {enc(V, "a", "c", "a", "c"): 2}
        got = DfsMiner(V, self.PARAMS).mine_partition(partition, V.id("c"))
        for seq in got:
            assert max(seq) == V.id("c")

    def test_explores_non_pivot_sequences(self, V):
        """The overhead LASH avoids: aa is explored although p(aa) ≠ c."""
        params = MiningParams(sigma=1, gamma=1, lam=3)
        partition = {enc(V, "a", "a", "c"): 1}
        dfs = DfsMiner(V, params)
        psm_equivalent_outputs = dfs.mine_partition(partition, V.id("c"))
        assert ("a", "a") not in decode(V, psm_equivalent_outputs)
        # 2 item candidates (a, c) + right-expansions of a, aa, ac and c
        assert dfs.stats.candidates > len(psm_equivalent_outputs)

    def test_respects_lambda(self, V):
        params = MiningParams(sigma=1, gamma=0, lam=2)
        partition = {enc(V, "a", "a", "c"): 1}
        got = DfsMiner(V, params).mine_partition(partition, V.id("c"))
        assert all(len(s) <= 2 for s in got)

    def test_hierarchy_expansion(self, V):
        params = MiningParams(sigma=1, gamma=0, lam=2)
        partition = {enc(V, "a", "b1"): 1}
        got = decode(V, DfsMiner(V, params).mine_partition(partition, V.id("b1")))
        assert got == {("a", "b1"): 1}  # aB has pivot B, mined elsewhere


class TestBfs:
    PARAMS = MiningParams(sigma=2, gamma=1, lam=3)

    def test_matches_brute_on_paper_partitions(self, V, fig1_database):
        from repro.core import build_partitions

        encoded = [V.encode_sequence(t) for t in fig1_database]
        partitions = build_partitions(V, encoded, self.PARAMS)
        for pivot, partition in partitions.items():
            bfs = BfsMiner(V, self.PARAMS).mine_partition(partition, pivot)
            brute = BruteForceMiner(V, self.PARAMS).mine_partition(
                partition, pivot
            )
            assert bfs == brute, V.name(pivot)

    def test_posting_peak_tracked(self, V):
        partition = {enc(V, "a", "c", "a", "c", "a"): 3}
        miner = BfsMiner(V, MiningParams(2, 1, 4))
        miner.mine_partition(partition, V.id("c"))
        assert miner.peak_postings > 0

    def test_level2_paper_example(self, V):
        """T = c a b1 D joins 8 posting lists (paper Sec. 5.1)."""
        params = MiningParams(sigma=1, gamma=1, lam=2)
        miner = BfsMiner(V, params)
        miner._pivot = V.id("D")
        partition = {enc(V, "c", "a", "b1", "D"): 1}
        postings = miner._build_2seq_postings(
            normalize_partition(partition),
            frequent_items=set(range(len(V))),
        )
        rendered = {
            (V.name(x), V.name(y)) for (x, y) in postings
        }
        assert rendered == {
            ("c", "a"), ("c", "b1"), ("c", "B"), ("a", "b1"),
            ("a", "B"), ("a", "D"), ("b1", "D"), ("B", "D"),
        }

    def test_empty_partition(self, V):
        assert BfsMiner(V, self.PARAMS).mine_partition({}, V.id("c")) == {}


class TestBrute:
    def test_weights_and_blanks(self, V):
        # γ=0: the blank blocks a..c in the second sequence, so the weight-5
        # copies contribute nothing and 2 < σ filters the rest.
        params = MiningParams(sigma=3, gamma=0, lam=2)
        partition = {enc(V, "a", "c"): 2, enc(V, "a", "_", "c"): 5}
        got = decode(V, BruteForceMiner(V, params).mine_partition(
            partition, V.id("c")
        ))
        assert got == {}

    def test_respects_sigma(self, V):
        params = MiningParams(sigma=2, gamma=0, lam=2)
        partition = {enc(V, "a", "c"): 2}
        got = decode(V, BruteForceMiner(V, params).mine_partition(
            partition, V.id("c")
        ))
        assert got == {("a", "c"): 2}
