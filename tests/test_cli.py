"""Integration tests for the CLI."""

import pytest

from repro.cli import main
from repro.datasets import example_database, example_hierarchy


@pytest.fixture
def example_files(tmp_path):
    db = tmp_path / "db.txt"
    hierarchy = tmp_path / "h.txt"
    example_database().to_file(db)
    example_hierarchy().to_file(hierarchy)
    return str(db), str(hierarchy)


class TestGenerate:
    def test_text(self, tmp_path, capsys):
        rc = main([
            "generate", "text", "--out", str(tmp_path / "t"),
            "--sentences", "30",
        ])
        assert rc == 0
        assert (tmp_path / "t" / "corpus.txt").exists()
        assert (tmp_path / "t" / "hierarchy-CLP.txt").exists()
        assert "30 sentences" in capsys.readouterr().out

    def test_products(self, tmp_path, capsys):
        rc = main([
            "generate", "products", "--out", str(tmp_path / "p"),
            "--users", "25", "--products", "40",
        ])
        assert rc == 0
        assert (tmp_path / "p" / "sessions.txt").exists()
        assert (tmp_path / "p" / "hierarchy-h8.txt").exists()

    def test_events(self, tmp_path, capsys):
        rc = main([
            "generate", "events", "--out", str(tmp_path / "e"),
            "--machines", "50",
        ])
        assert rc == 0
        assert (tmp_path / "e" / "logs.txt").exists()
        assert (tmp_path / "e" / "hierarchy.txt").exists()
        assert "planted cascades" in capsys.readouterr().out


class TestStats:
    def test_stats(self, example_files, capsys):
        db, hierarchy = example_files
        rc = main(["stats", "--db", db, "--hierarchy", hierarchy])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Sequences=6" in out
        assert "Levels=3" in out


class TestMine:
    def test_lash(self, example_files, capsys, tmp_path):
        db, hierarchy = example_files
        out_file = tmp_path / "patterns.tsv"
        rc = main([
            "mine", "--db", db, "--hierarchy", hierarchy,
            "--sigma", "2", "--gamma", "1", "--lam", "3",
            "--out", str(out_file),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "10 patterns" in out
        assert "a B" in out
        assert len(out_file.read_text().strip().split("\n")) == 10

    @pytest.mark.parametrize(
        "algorithm", ["naive", "semi-naive", "gsp", "mg-fsm"]
    )
    def test_other_algorithms(self, example_files, capsys, algorithm):
        db, hierarchy = example_files
        rc = main([
            "mine", "--db", db, "--hierarchy", hierarchy,
            "--sigma", "2", "--gamma", "1", "--lam", "3",
            "--algorithm", algorithm,
        ])
        assert rc == 0
        assert "patterns" in capsys.readouterr().out

    @pytest.mark.parametrize("miner", ["spam", "bfs"])
    def test_alternative_local_miners(self, example_files, capsys, miner):
        db, hierarchy = example_files
        rc = main([
            "mine", "--db", db, "--hierarchy", hierarchy,
            "--sigma", "2", "--gamma", "1", "--lam", "3",
            "--miner", miner,
        ])
        assert rc == 0
        assert "10 patterns" in capsys.readouterr().out

    def test_closed_filter(self, example_files, capsys):
        db, hierarchy = example_files
        rc = main([
            "mine", "--db", db, "--hierarchy", hierarchy,
            "--sigma", "2", "--gamma", "1", "--lam", "3",
            "--filter", "closed",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "+closed" in out

    def test_flist_reuse(self, example_files, capsys, tmp_path):
        db, hierarchy = example_files
        flist = tmp_path / "flist.tsv"
        rc = main(["flist", "--db", db, "--hierarchy", hierarchy,
                   "--out", str(flist)])
        assert rc == 0
        assert "wrote" in capsys.readouterr().out
        rc = main([
            "mine", "--db", db, "--hierarchy", hierarchy,
            "--flist", str(flist),
            "--sigma", "2", "--gamma", "1", "--lam", "3",
        ])
        assert rc == 0
        assert "10 patterns" in capsys.readouterr().out

    def test_store_shards_export(self, example_files, capsys, tmp_path):
        db, hierarchy = example_files
        store = tmp_path / "patterns.shards"
        rc = main([
            "mine", "--db", db, "--hierarchy", hierarchy,
            "--sigma", "2", "--gamma", "1", "--lam", "3",
            "--store", str(store), "--store-shards", "3",
        ])
        assert rc == 0
        assert "wrote pattern store" in capsys.readouterr().out
        from repro.serve import open_store

        with open_store(store) as opened:
            info = opened.describe()
            assert info["shards"] == 3
            assert info["patterns"] == 10

    def test_store_shards_requires_store(self, example_files):
        db, hierarchy = example_files
        with pytest.raises(SystemExit, match="--store-shards"):
            main([
                "mine", "--db", db, "--hierarchy", hierarchy,
                "--sigma", "2", "--store-shards", "3",
            ])

    def test_flist_without_hierarchy_rejected(self, example_files, tmp_path):
        db, hierarchy = example_files
        flist = tmp_path / "flist.tsv"
        main(["flist", "--db", db, "--hierarchy", hierarchy,
              "--out", str(flist)])
        with pytest.raises(SystemExit):
            main([
                "mine", "--db", db, "--flist", str(flist),
                "--sigma", "2",
            ])

    def test_gzip_paths(self, example_files, capsys, tmp_path):
        from repro.datasets import example_database
        from repro.io import write_database

        _, hierarchy = example_files
        db_gz = tmp_path / "db.txt.gz"
        write_database(example_database(), db_gz)
        out_gz = tmp_path / "patterns.tsv.gz"
        rc = main([
            "mine", "--db", str(db_gz), "--hierarchy", hierarchy,
            "--sigma", "2", "--gamma", "1", "--lam", "3",
            "--out", str(out_gz),
        ])
        assert rc == 0
        assert out_gz.exists()

    def test_unbounded_gamma(self, example_files, capsys):
        db, hierarchy = example_files
        rc = main([
            "mine", "--db", db, "--hierarchy", hierarchy,
            "--sigma", "2", "--gamma", "-1", "--lam", "3",
        ])
        assert rc == 0

    def test_flat_mining_without_hierarchy(self, example_files, capsys):
        db, _ = example_files
        rc = main(["mine", "--db", db, "--sigma", "2", "--gamma", "1",
                   "--lam", "3"])
        assert rc == 0

    def test_parallel_engine(self, example_files, tmp_path, capsys):
        db, hierarchy = example_files
        serial, parallel = tmp_path / "serial.tsv", tmp_path / "par.tsv"
        base = ["mine", "--db", db, "--hierarchy", hierarchy,
                "--sigma", "2", "--gamma", "1", "--lam", "3"]
        assert main(base + ["--out", str(serial)]) == 0
        assert main(base + ["--engine", "parallel", "--max-workers", "2",
                            "--out", str(parallel)]) == 0
        capsys.readouterr()
        assert main(["compare", str(serial), str(parallel)]) == 0

    def test_max_workers_requires_parallel_engine(self, example_files):
        db, hierarchy = example_files
        with pytest.raises(SystemExit, match="requires --engine parallel"):
            main([
                "mine", "--db", db, "--hierarchy", hierarchy,
                "--sigma", "2", "--max-workers", "2",
            ])

    def test_parallel_engine_rejected_for_mgfsm(self, example_files):
        db, hierarchy = example_files
        with pytest.raises(SystemExit, match="not supported"):
            main([
                "mine", "--db", db, "--hierarchy", hierarchy,
                "--sigma", "2", "--algorithm", "mg-fsm",
                "--engine", "parallel",
            ])


class TestCompare:
    def test_agree(self, example_files, tmp_path, capsys):
        db, hierarchy = example_files
        a, b = tmp_path / "a.tsv", tmp_path / "b.tsv"
        base = ["mine", "--db", db, "--hierarchy", hierarchy,
                "--sigma", "2", "--gamma", "1", "--lam", "3"]
        main(base + ["--out", str(a)])
        main(base + ["--algorithm", "naive", "--out", str(b)])
        rc = main(["compare", str(a), str(b)])
        assert rc == 0
        assert "agree" in capsys.readouterr().out

    def test_differ(self, example_files, tmp_path, capsys):
        db, hierarchy = example_files
        a, b = tmp_path / "a.tsv", tmp_path / "b.tsv"
        base = ["mine", "--db", db, "--hierarchy", hierarchy,
                "--gamma", "1", "--lam", "3"]
        main(base + ["--sigma", "2", "--out", str(a)])
        main(base + ["--sigma", "3", "--out", str(b)])
        rc = main(["compare", str(a), str(b)])
        assert rc == 1
        assert "differ" in capsys.readouterr().out

    def test_hierarchy_file_roundtrip(self, tmp_path):
        from repro.hierarchy import Hierarchy

        h = example_hierarchy()
        path = tmp_path / "h.txt"
        h.to_file(path)
        loaded = Hierarchy.from_file(path)
        assert set(loaded.items) == set(h.items)
        assert loaded.ancestors_or_self("b11") == h.ancestors_or_self("b11")


class TestClosedLash:
    def test_direct_closed(self, example_files, capsys):
        db, hierarchy = example_files
        rc = main([
            "mine", "--db", db, "--hierarchy", hierarchy,
            "--sigma", "2", "--gamma", "1", "--lam", "3",
            "--algorithm", "closed-lash",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "closed-lash[closed,psm]" in out

    def test_direct_maximal_matches_filter(
        self, example_files, tmp_path, capsys
    ):
        db, hierarchy = example_files
        direct = tmp_path / "direct.tsv"
        filtered = tmp_path / "filtered.tsv"
        common = [
            "--db", db, "--hierarchy", hierarchy,
            "--sigma", "2", "--gamma", "1", "--lam", "3",
        ]
        assert main([
            "mine", *common, "--algorithm", "closed-lash",
            "--mode", "maximal", "--out", str(direct),
        ]) == 0
        assert main([
            "mine", *common, "--filter", "maximal", "--out", str(filtered),
        ]) == 0
        capsys.readouterr()
        assert main(["compare", str(direct), str(filtered)]) == 0


class TestQuery:
    @pytest.fixture
    def mined_patterns(self, example_files, tmp_path, capsys):
        db, hierarchy = example_files
        patterns = tmp_path / "patterns.tsv"
        main([
            "mine", "--db", db, "--hierarchy", hierarchy,
            "--sigma", "2", "--gamma", "1", "--lam", "3",
            "--out", str(patterns),
        ])
        capsys.readouterr()
        return str(patterns), hierarchy

    def test_exact_query(self, mined_patterns, capsys):
        patterns, hierarchy = mined_patterns
        rc = main([
            "query", "--patterns", patterns, "--hierarchy", hierarchy,
            "a ?",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "a B" in out and "mass" in out

    def test_under_query_needs_hierarchy(self, mined_patterns, capsys):
        patterns, hierarchy = mined_patterns
        rc = main([
            "query", "--patterns", patterns, "--hierarchy", hierarchy,
            "^B ?",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "b1 a" in out

    def test_query_without_hierarchy_still_matches_wildcards(
        self, mined_patterns, capsys
    ):
        patterns, _ = mined_patterns
        rc = main(["query", "--patterns", patterns, "? ? ?"])
        assert rc == 0
        assert "a B c" in capsys.readouterr().out

    def test_disjunction_query(self, mined_patterns, capsys):
        patterns, hierarchy = mined_patterns
        rc = main([
            "query", "--patterns", patterns, "--hierarchy", hierarchy,
            "(a|^B) ?",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "a B" in out

    def test_frequency_floor_query(self, mined_patterns, capsys):
        patterns, hierarchy = mined_patterns
        # an unsatisfiable floor matches nothing → exit status 1
        rc = main([
            "query", "--patterns", patterns, "--hierarchy", hierarchy,
            "?@100000 ?",
        ])
        assert rc == 1
        assert "(0 patterns" in capsys.readouterr().out

    def test_no_match_returns_nonzero(self, mined_patterns, capsys):
        patterns, hierarchy = mined_patterns
        rc = main([
            "query", "--patterns", patterns, "--hierarchy", hierarchy,
            "? ? ? ?",
        ])
        assert rc == 1

    def test_multiple_queries(self, mined_patterns, capsys):
        patterns, hierarchy = mined_patterns
        rc = main([
            "query", "--patterns", patterns, "--hierarchy", hierarchy,
            "a ?", "* D",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.count("query:") == 2

    def test_negation_and_gap_query(self, mined_patterns, capsys):
        patterns, hierarchy = mined_patterns
        rc = main([
            "query", "--patterns", patterns, "--hierarchy", hierarchy,
            "a !^B *{0,1}",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "a c" in out
        assert "a B" not in out

    def test_min_freq_override(self, mined_patterns, capsys):
        patterns, hierarchy = mined_patterns
        # an unsatisfiable per-query σ matches nothing → exit status 1
        rc = main([
            "query", "--patterns", patterns, "--hierarchy", hierarchy,
            "--min-freq", "100000", "a ?",
        ])
        assert rc == 1
        assert "(0 patterns" in capsys.readouterr().out
        rc = main([
            "query", "--patterns", patterns, "--hierarchy", hierarchy,
            "--min-freq", "1", "a ?",
        ])
        assert rc == 0


class TestIndex:
    @pytest.fixture
    def mined_patterns(self, example_files, tmp_path, capsys):
        db, hierarchy = example_files
        patterns = tmp_path / "patterns.tsv"
        main([
            "mine", "--db", db, "--hierarchy", hierarchy,
            "--sigma", "2", "--gamma", "1", "--lam", "3",
            "--out", str(patterns),
        ])
        capsys.readouterr()
        return str(patterns), hierarchy

    def test_build_and_info(self, mined_patterns, tmp_path, capsys):
        patterns, hierarchy = mined_patterns
        store = tmp_path / "patterns.store"
        rc = main([
            "index", "build", "--patterns", patterns,
            "--hierarchy", hierarchy, "--out", str(store),
        ])
        assert rc == 0
        assert "wrote 10 patterns" in capsys.readouterr().out
        rc = main(["index", "info", "--store", str(store)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "patterns=10" in out

    def test_store_answers_like_query_command(
        self, mined_patterns, tmp_path, capsys
    ):
        from repro.serve import PatternStore

        patterns, hierarchy = mined_patterns
        store_path = tmp_path / "patterns.store"
        main([
            "index", "build", "--patterns", patterns,
            "--hierarchy", hierarchy, "--out", str(store_path),
        ])
        capsys.readouterr()
        assert main([
            "query", "--patterns", patterns, "--hierarchy", hierarchy,
            "^B ?",
        ]) == 0
        cli_out = capsys.readouterr().out
        with PatternStore.open(store_path) as store:
            # CLI prints at most the default --top 10 matches
            for match in store.search("^B ?", limit=10):
                assert match.render() in cli_out

    def test_mine_store_export(self, example_files, tmp_path, capsys):
        from repro.serve import PatternStore

        db, hierarchy = example_files
        store_path = tmp_path / "mined.store"
        rc = main([
            "mine", "--db", db, "--hierarchy", hierarchy,
            "--sigma", "2", "--gamma", "1", "--lam", "3",
            "--store", str(store_path),
        ])
        assert rc == 0
        with PatternStore.open(store_path) as store:
            assert len(store) == 10
            assert store.frequency("a", "B") == 3

    def test_build_sharded_and_info(self, mined_patterns, tmp_path, capsys):
        from repro.serve import ShardedPatternStore, open_store

        patterns, hierarchy = mined_patterns
        shards_path = tmp_path / "patterns.shards"
        rc = main([
            "index", "build", "--patterns", patterns,
            "--hierarchy", hierarchy, "--out", str(shards_path),
            "--shards", "4",
        ])
        assert rc == 0
        assert "4 shards" in capsys.readouterr().out
        rc = main(["index", "info", "--store", str(shards_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "shards=4" in out
        assert "shard 0" in out and "shard 3" in out
        with open_store(shards_path) as store:
            assert isinstance(store, ShardedPatternStore)
            assert len(store) == 10

    def test_sharded_build_matches_single(
        self, mined_patterns, tmp_path, capsys
    ):
        from repro.serve import open_store

        patterns, hierarchy = mined_patterns
        single = tmp_path / "single.store"
        sharded = tmp_path / "sharded.store"
        for args in (
            ["index", "build", "--patterns", patterns, "--hierarchy",
             hierarchy, "--out", str(single)],
            ["index", "build", "--patterns", patterns, "--hierarchy",
             hierarchy, "--out", str(sharded), "--shards", "3"],
        ):
            assert main(args) == 0
        capsys.readouterr()
        with open_store(single) as a, open_store(sharded) as b:
            assert list(a) == list(b)
            assert a.search("^B ?") == b.search("^B ?")

    def test_merge_two_stores(self, mined_patterns, tmp_path, capsys):
        from repro.serve import open_store

        patterns, hierarchy = mined_patterns
        first = tmp_path / "first.store"
        second = tmp_path / "second.shards"
        merged = tmp_path / "merged.store"
        main([
            "index", "build", "--patterns", patterns,
            "--hierarchy", hierarchy, "--out", str(first),
        ])
        main([
            "index", "build", "--patterns", patterns,
            "--hierarchy", hierarchy, "--out", str(second),
            "--shards", "2",
        ])
        capsys.readouterr()
        rc = main([
            "index", "merge", str(first), str(second),
            "--out", str(merged),
        ])
        assert rc == 0
        assert "merged 2 stores" in capsys.readouterr().out
        with open_store(first) as single, open_store(merged) as combined:
            # same corpus twice: same patterns, doubled frequencies
            assert len(combined) == len(single)
            for match in single:
                assert (
                    combined.frequency(*match.pattern)
                    == 2 * match.frequency
                )

    def test_no_checksums_flag(self, mined_patterns, tmp_path, capsys):
        from repro.serve import PatternStore

        patterns, hierarchy = mined_patterns
        store_path = tmp_path / "plain.store"
        rc = main([
            "index", "build", "--patterns", patterns,
            "--hierarchy", hierarchy, "--out", str(store_path),
            "--no-checksums",
        ])
        assert rc == 0
        with PatternStore.open(store_path) as store:
            assert store.describe()["checksums"] is False


class TestIndexCompact:
    @pytest.fixture
    def mined_patterns(self, example_files, tmp_path, capsys):
        db, hierarchy = example_files
        patterns = tmp_path / "patterns.tsv"
        main([
            "mine", "--db", db, "--hierarchy", hierarchy,
            "--sigma", "2", "--gamma", "1", "--lam", "3",
            "--out", str(patterns),
        ])
        capsys.readouterr()
        return str(patterns), hierarchy

    def test_compact_folds_delta(self, mined_patterns, tmp_path, capsys):
        from repro.serve import open_store
        from repro.serve.format import read_manifest

        patterns, hierarchy = mined_patterns
        base = tmp_path / "base.shards"
        delta = tmp_path / "delta.store"
        main([
            "index", "build", "--patterns", patterns,
            "--hierarchy", hierarchy, "--out", str(base), "--shards", "2",
        ])
        main([
            "index", "build", "--patterns", patterns,
            "--hierarchy", hierarchy, "--out", str(delta),
        ])
        capsys.readouterr()
        rc = main([
            "index", "compact", "--store", str(base), str(delta),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "compacted 1 deltas" in out
        assert "generation 1" in out
        assert read_manifest(base)["generation"] == 1
        with open_store(base) as store:
            # same corpus twice: frequencies doubled
            for match in store:
                assert store.frequency(*match.pattern) == match.frequency

    def test_compact_rebalances_shard_count(
        self, mined_patterns, tmp_path, capsys
    ):
        from repro.serve import open_store

        patterns, hierarchy = mined_patterns
        base = tmp_path / "base.shards"
        main([
            "index", "build", "--patterns", patterns,
            "--hierarchy", hierarchy, "--out", str(base), "--shards", "2",
        ])
        capsys.readouterr()
        with open_store(base) as store:
            expected = list(store)
        rc = main([
            "index", "compact", "--store", str(base), "--shards", "5",
        ])
        assert rc == 0
        assert "across 5 shards" in capsys.readouterr().out
        with open_store(base) as store:
            assert store.num_shards == 5
            assert list(store) == expected

    def test_compact_rejects_single_file_store(
        self, mined_patterns, tmp_path, capsys
    ):
        from repro.errors import EncodingError

        patterns, hierarchy = mined_patterns
        store = tmp_path / "single.store"
        main([
            "index", "build", "--patterns", patterns,
            "--hierarchy", hierarchy, "--out", str(store),
        ])
        capsys.readouterr()
        with pytest.raises(EncodingError, match="not a sharded store"):
            main(["index", "compact", "--store", str(store)])

    def test_serve_compact_spool_requires_sharded_store(
        self, mined_patterns, tmp_path, capsys
    ):
        patterns, hierarchy = mined_patterns
        store = tmp_path / "single.store"
        main([
            "index", "build", "--patterns", patterns,
            "--hierarchy", hierarchy, "--out", str(store),
        ])
        capsys.readouterr()
        with pytest.raises(SystemExit, match="sharded store"):
            main([
                "serve", "--store", str(store),
                "--compact-spool", str(tmp_path / "spool"),
            ])


class TestIndexInfoHeaderOnly:
    def test_info_survives_body_corruption(
        self, example_files, tmp_path, capsys
    ):
        """`lash index info` reads headers/manifest only: flipping a bit
        deep in a shard body fails a verifying open but not `info`."""
        from repro.errors import StoreCorruptError
        from repro.serve import open_store

        db, hierarchy = example_files
        patterns = tmp_path / "patterns.tsv"
        main([
            "mine", "--db", db, "--hierarchy", hierarchy,
            "--sigma", "2", "--gamma", "1", "--lam", "3",
            "--out", str(patterns),
        ])
        shards = tmp_path / "info.shards"
        main([
            "index", "build", "--patterns", str(patterns),
            "--hierarchy", hierarchy, "--out", str(shards), "--shards", "2",
        ])
        capsys.readouterr()
        victim = next(shards.glob("shard-*.store"))
        blob = bytearray(victim.read_bytes())
        blob[-1] ^= 0xFF  # inside the postings/checksum tail, not the header
        victim.write_bytes(blob)

        with pytest.raises(StoreCorruptError):
            with open_store(shards) as store:
                store.describe()

        rc = main(["index", "info", "--store", str(shards)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "shard 0" in out and "shard 1" in out


class TestDistributedCLI:
    @pytest.fixture
    def sharded_store(self, example_files, tmp_path, capsys):
        db, hierarchy = example_files
        patterns = tmp_path / "patterns.tsv"
        main([
            "mine", "--db", db, "--hierarchy", hierarchy,
            "--sigma", "2", "--gamma", "1", "--lam", "3",
            "--out", str(patterns),
        ])
        shards = tmp_path / "dist.shards"
        main([
            "index", "build", "--patterns", str(patterns),
            "--hierarchy", hierarchy, "--out", str(shards), "--shards", "2",
        ])
        capsys.readouterr()
        return shards

    def test_info_advise(self, sharded_store, capsys):
        rc = main([
            "index", "info", "--store", str(sharded_store), "--advise",
            "--target-bytes", "4096",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "routing groups:" in out
        assert "recommendation: --shards" in out

    def test_shard_serve_starts_and_stops(
        self, sharded_store, capsys, monkeypatch
    ):
        import repro.cli as cli_module

        # the serve loop parks in hour-long sleeps; the first one
        # "receiving Ctrl-C" drives the clean-shutdown path
        def interrupt(_seconds):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli_module.time, "sleep", interrupt)
        rc = main([
            "shard-serve", "--store", str(sharded_store),
            "--shards", "0", "--no-http",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "shards [0] of 2" in out

    def test_route_against_live_shard_server(
        self, sharded_store, tmp_path, capsys, monkeypatch
    ):
        import json

        import repro.serve.http as http_module
        from repro.serve.distributed import ShardServer

        monkeypatch.setattr(http_module, "run_server", lambda server: None)
        with ShardServer(sharded_store, http_port=None) as server:
            host, port = server.address
            cluster = tmp_path / "cluster.json"
            cluster.write_text(json.dumps({
                "num_shards": 2,
                "servers": [{"host": host, "port": port}],
            }))
            rc = main([
                "route", "--cluster", str(cluster), "--port", "0",
            ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "routing 2 shards over 1 servers (1 healthy)" in out
        assert "shard 0:" in out and "shard 1:" in out


class TestIngestCLI:
    @pytest.fixture
    def live_store(self, example_files, tmp_path, capsys):
        db, hierarchy = example_files
        patterns = tmp_path / "patterns.tsv"
        main([
            "mine", "--db", db, "--hierarchy", hierarchy,
            "--sigma", "1", "--gamma", "1", "--lam", "3",
            "--out", str(patterns),
        ])
        store = tmp_path / "live.shards"
        main([
            "index", "build", "--patterns", str(patterns),
            "--hierarchy", hierarchy, "--out", str(store),
            "--shards", "3",
        ])
        capsys.readouterr()
        return str(store), db

    def test_init_add_retire_status_flush(
        self, live_store, tmp_path, capsys
    ):
        store, db = live_store
        spool = str(tmp_path / "spool")
        state = str(tmp_path / "state")
        rc = main([
            "ingest", "init", "--store", store, "--spool", spool,
            "--state", state, "--gamma", "1", "--lam", "3",
        ])
        assert rc == 0
        assert "initialized ingest state" in capsys.readouterr().out

        rc = main(["ingest", "add", "--state", state, "a c", "b1 a"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "ingested 2 sequences" in out
        assert "delta-00000000-00000002.store" in out

        rc = main(["ingest", "add", "--state", state, "--db", db])
        assert rc == 0
        assert "ingested 6 sequences" in capsys.readouterr().out

        rc = main(["ingest", "retire", "--state", state, "--count", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "retired 3 sequences" in out
        assert "retire-00000000-00000003.store" in out

        rc = main(["ingest", "status", "--state", state])
        assert rc == 0
        out = capsys.readouterr().out
        assert "journaled=8" in out
        assert "retained_from=3" in out
        assert "pending:" in out

        rc = main(["ingest", "flush", "--state", state])
        assert rc == 0
        assert "nothing pending" in capsys.readouterr().out

    def test_add_requires_some_input(self, live_store, tmp_path, capsys):
        store, _ = live_store
        spool = str(tmp_path / "spool")
        state = str(tmp_path / "state")
        main([
            "ingest", "init", "--store", store, "--spool", spool,
            "--state", state, "--gamma", "1", "--lam", "3",
        ])
        capsys.readouterr()
        with pytest.raises(SystemExit, match="nothing to ingest"):
            main(["ingest", "add", "--state", state])

    def test_serve_accepts_applied_retain_flag(self):
        from repro.cli import build_parser

        args = build_parser().parse_args([
            "serve", "--store", "s", "--compact-spool", "sp",
            "--applied-retain", "7",
        ])
        assert args.applied_retain == 7
