"""Unit tests for the MG-FSM baseline (flat mining)."""

import pytest

from repro import Lash, MgFsm, MiningParams, SequenceDatabase


@pytest.fixture
def flat_db():
    return SequenceDatabase(
        [
            ["x", "y", "x"],
            ["x", "y", "z"],
            ["y", "x", "z"],
            ["x", "y"],
        ]
    )


class TestMgFsm:
    def test_flat_counts(self, flat_db):
        result = MgFsm(MiningParams(2, 0, 3)).mine(flat_db)
        got = result.decoded()
        assert got[("x", "y")] == 3
        assert got[("y", "x")] == 2
        assert ("z",) not in got

    def test_matches_lash_flat_mode(self, flat_db):
        params = MiningParams(2, 1, 3)
        mgfsm = MgFsm(params).mine(flat_db)
        lash = Lash(params).mine(flat_db, hierarchy=None)
        assert mgfsm.decoded() == lash.decoded()

    def test_matches_lash_on_paper_database(self, fig1_database):
        """Fig. 4(e): same answers, different local miners."""
        params = MiningParams(2, 1, 3)
        mgfsm = MgFsm(params).mine(fig1_database)
        lash = Lash(params).mine(fig1_database, hierarchy=None)
        assert mgfsm.decoded() == lash.decoded()

    def test_algorithm_label(self, flat_db):
        assert MgFsm(MiningParams(2, 0, 2)).mine(flat_db).algorithm == "mg-fsm"

    def test_hierarchy_items_never_generalize(self, fig1_database):
        """Flat mode treats b1/b11 as unrelated items."""
        result = MgFsm(MiningParams(2, 1, 3)).mine(fig1_database)
        got = result.decoded()
        assert ("a", "B") not in got
        assert ("B", "D") not in got

    def test_uses_bfs_miner_by_default(self, flat_db):
        mgfsm = MgFsm(MiningParams(2, 0, 2))
        result = mgfsm.mine(flat_db)
        assert result.local_stats.candidates > 0
