"""Unit tests for the naïve baseline."""

import pytest

from repro import MiningParams, NaiveAlgorithm
from repro.mapreduce import C
from tests.core.test_lash import PAPER_OUTPUT


class TestCorrectness:
    def test_paper_example(self, fig1_database, fig1_hierarchy):
        result = NaiveAlgorithm(MiningParams(2, 1, 3)).mine(
            fig1_database, fig1_hierarchy
        )
        assert result.decoded() == PAPER_OUTPUT

    def test_flat_mode(self, fig1_database):
        result = NaiveAlgorithm(MiningParams(2, 1, 3)).mine(fig1_database)
        got = result.decoded()
        assert got[("a", "a")] == 2
        assert ("a", "B") not in got

    def test_sigma_filters(self, fig1_database, fig1_hierarchy):
        result = NaiveAlgorithm(MiningParams(4, 1, 3)).mine(
            fig1_database, fig1_hierarchy
        )
        assert result.decoded() == {}

    def test_algorithm_label(self, fig1_database, fig1_hierarchy):
        result = NaiveAlgorithm(MiningParams(2, 1, 3)).mine(
            fig1_database, fig1_hierarchy
        )
        assert result.algorithm == "naive"


class TestCost:
    """The naïve algorithm's defining weakness: emission volume."""

    def test_emits_every_generalized_subsequence(
        self, fig1_database, fig1_hierarchy
    ):
        result = NaiveAlgorithm(MiningParams(2, 1, 3)).mine(
            fig1_database, fig1_hierarchy
        )
        # T4 alone contributes its 19 G3 emissions (paper Sec. 3.2)
        assert result.counters[C.MAP_OUTPUT_RECORDS] >= 19

    def test_emits_more_than_lash(self, fig1_database, fig1_hierarchy):
        from repro.core.lash import mine

        naive = NaiveAlgorithm(MiningParams(2, 1, 3)).mine(
            fig1_database, fig1_hierarchy
        )
        lash = mine(fig1_database, fig1_hierarchy, sigma=2, gamma=1, lam=3)
        assert (
            naive.counters[C.MAP_OUTPUT_RECORDS]
            > lash.counters[C.MAP_OUTPUT_RECORDS]
        )
