"""Unit tests for the extended-sequence GSP baseline."""

import pytest

from repro import GspAlgorithm, MiningParams, NaiveAlgorithm, mine
from repro.baselines.gsp import (
    extend_sequence,
    join_candidates,
    matches_extended,
)
from repro.hierarchy import build_vocabulary


@pytest.fixture
def V(fig1_vocabulary):
    return fig1_vocabulary


class TestExtendSequence:
    def test_itemsets_contain_ancestors(self, V):
        """c a b1 D → itemsets {c}, {a}, {b1, B}, {D} (paper's encoding)."""
        seq = V.encode_sequence(["c", "a", "b1", "D"])
        extended = extend_sequence(V, seq)
        names = [sorted(V.name(i) for i in s) for s in extended]
        assert names == [["c"], ["a"], ["B", "b1"], ["D"]]

    def test_deep_item(self, V):
        (itemset,) = extend_sequence(V, V.encode_sequence(["b11"]))
        assert sorted(V.name(i) for i in itemset) == ["B", "b1", "b11"]


class TestMatchesExtended:
    def test_generalized_match(self, V):
        extended = extend_sequence(V, V.encode_sequence(["a", "b3", "c"]))
        pattern = V.encode_sequence(["a", "B"])
        assert matches_extended(extended, pattern, 0)

    def test_gap_respected(self, V):
        extended = extend_sequence(V, V.encode_sequence(["a", "c", "b1"]))
        pattern = V.encode_sequence(["a", "B"])
        assert not matches_extended(extended, pattern, 0)
        assert matches_extended(extended, pattern, 1)

    def test_unbounded_gap(self, V):
        extended = extend_sequence(
            V, V.encode_sequence(["a", "c", "c", "c", "b1"])
        )
        pattern = V.encode_sequence(["a", "B"])
        assert matches_extended(extended, pattern, None)

    def test_empty_pattern_matches(self, V):
        assert matches_extended([], (), 0)


class TestJoinCandidates:
    def test_pairs_from_singletons(self):
        got = set(join_candidates([(1,), (2,)]))
        assert got == {(1, 1), (1, 2), (2, 1), (2, 2)}

    def test_prefix_suffix_overlap(self):
        frequent = [(1, 2), (2, 3)]
        assert join_candidates(frequent) == [(1, 2, 3)]

    def test_self_join_repetition(self):
        assert (1, 1, 1) in join_candidates([(1, 1)])

    def test_no_join_without_overlap(self):
        assert join_candidates([(1, 2), (3, 4)]) == []


class TestGspMining:
    def test_paper_example(self, fig1_database, fig1_hierarchy):
        """Fig. 1/Sec. 2: σ=2, γ=1, λ=3 produces exactly the 10 patterns."""
        params = MiningParams(sigma=2, gamma=1, lam=3)
        result = GspAlgorithm(params).mine(fig1_database, fig1_hierarchy)
        expected = {
            ("a", "a"): 2, ("a", "b1"): 2, ("b1", "a"): 2, ("a", "B"): 3,
            ("B", "a"): 2, ("a", "B", "c"): 2, ("B", "c"): 2, ("a", "c"): 2,
            ("b1", "D"): 2, ("B", "D"): 2,
        }
        assert result.decoded() == expected
        assert result.algorithm == "gsp"

    def test_matches_naive_various_params(self, fig1_database, fig1_hierarchy):
        for sigma, gamma, lam in [(2, 0, 3), (2, None, 4), (3, 1, 2)]:
            params = MiningParams(sigma, gamma, lam)
            gsp = GspAlgorithm(params).mine(fig1_database, fig1_hierarchy)
            naive = NaiveAlgorithm(params).mine(fig1_database, fig1_hierarchy)
            assert gsp.decoded() == naive.decoded(), (sigma, gamma, lam)

    def test_level_sizes_recorded(self, fig1_database, fig1_hierarchy):
        params = MiningParams(sigma=2, gamma=1, lam=3)
        gsp = GspAlgorithm(params)
        gsp.mine(fig1_database, fig1_hierarchy)
        assert set(gsp.level_sizes) >= {1, 2}
        candidates2, frequent2 = gsp.level_sizes[2]
        assert candidates2 >= frequent2 > 0

    def test_flat_mining(self, fig1_database):
        """Without a hierarchy GSP degenerates to plain GSP."""
        params = MiningParams(sigma=2, gamma=1, lam=3)
        gsp = GspAlgorithm(params).mine(fig1_database)
        naive = NaiveAlgorithm(params).mine(fig1_database)
        assert gsp.decoded() == naive.decoded()

    def test_empty_when_sigma_too_high(self, fig1_database, fig1_hierarchy):
        params = MiningParams(sigma=100, gamma=1, lam=3)
        result = GspAlgorithm(params).mine(fig1_database, fig1_hierarchy)
        assert len(result) == 0

    def test_reuses_prebuilt_vocabulary(self, fig1_database, fig1_hierarchy):
        vocabulary = build_vocabulary(fig1_database, fig1_hierarchy)
        params = MiningParams(sigma=2, gamma=1, lam=3)
        result = GspAlgorithm(params).mine(
            fig1_database, vocabulary=vocabulary
        )
        assert result.preprocess_job is None
        assert result.frequency("a", "B") == 3

    def test_counters_accumulate_across_levels(
        self, fig1_database, fig1_hierarchy
    ):
        from repro.mapreduce.counters import C

        params = MiningParams(sigma=2, gamma=1, lam=3)
        result = GspAlgorithm(params).mine(fig1_database, fig1_hierarchy)
        assert result.counters[C.MAP_OUTPUT_BYTES] > 0
        # one map task profile per level job at least
        assert len(result.metrics.map_task_s) > 8
