"""Unit tests for the semi-naïve baseline — pinned to the Sec. 3.3 example."""

import pytest

from repro import MiningParams, SemiNaiveAlgorithm, build_vocabulary
from repro.baselines.seminaive import (
    SemiNaiveGsmJob,
    frequency_threshold_item,
    generalize_to_frequent,
)
from repro.constants import BLANK
from repro.mapreduce import C
from tests.core.test_lash import PAPER_OUTPUT


@pytest.fixture
def V(fig1_vocabulary):
    return fig1_vocabulary


class TestGeneralization:
    def test_threshold_item(self, V):
        # frequent for σ=2: a, B, b1, c, D → threshold is D
        assert V.name(frequency_threshold_item(V, 2)) == "D"
        # σ=1: everything frequent → the very last item
        assert frequency_threshold_item(V, 1) == len(V) - 1

    def test_nothing_frequent(self, V):
        assert frequency_threshold_item(V, 10**6) == -1

    def test_paper_t4(self, V):
        """T4 = b11 a e a, σ=2 → b1 a _ a (paper Sec. 3.3)."""
        t4 = V.encode_sequence(("b11", "a", "e", "a"))
        got = generalize_to_frequent(V, t4, sigma=2)
        assert got == [V.id("b1"), V.id("a"), BLANK, V.id("a")]

    def test_frequent_items_untouched(self, V):
        t1 = V.encode_sequence(("a", "b1", "a", "b1"))
        assert generalize_to_frequent(V, t1, sigma=2) == list(t1)


class TestMapEmissions:
    def test_paper_t4_emissions(self, V):
        """Semi-naïve emits exactly {aa, b1a, b1aa, Ba, Baa} for T4."""
        job = SemiNaiveGsmJob(V, MiningParams(2, 1, 3))
        t4 = V.encode_sequence(("b11", "a", "e", "a"))
        emitted = {
            tuple(V.name(i) for i in key) for key, _ in job.map(t4)
        }
        assert emitted == {
            ("a", "a"),
            ("b1", "a"),
            ("b1", "a", "a"),
            ("B", "a"),
            ("B", "a", "a"),
        }

    def test_reduction_factor_vs_naive(self, V):
        """Paper: semi-naïve reduces T4's output by a factor > 3."""
        job = SemiNaiveGsmJob(V, MiningParams(2, 1, 3))
        t4 = V.encode_sequence(("b11", "a", "e", "a"))
        semi = sum(1 for _ in job.map(t4))
        assert semi == 5
        assert 19 / semi > 3


class TestCorrectness:
    def test_paper_example(self, fig1_database, fig1_hierarchy):
        result = SemiNaiveAlgorithm(MiningParams(2, 1, 3)).mine(
            fig1_database, fig1_hierarchy
        )
        assert result.decoded() == PAPER_OUTPUT

    def test_emits_fewer_records_than_naive(
        self, fig1_database, fig1_hierarchy
    ):
        from repro import NaiveAlgorithm

        params = MiningParams(2, 1, 3)
        semi = SemiNaiveAlgorithm(params).mine(fig1_database, fig1_hierarchy)
        naive = NaiveAlgorithm(params).mine(fig1_database, fig1_hierarchy)
        assert (
            semi.counters[C.MAP_OUTPUT_RECORDS]
            < naive.counters[C.MAP_OUTPUT_RECORDS]
        )

    def test_degenerates_to_naive_when_all_frequent(self, fig1_hierarchy):
        """With σ=1 every item is frequent: no pruning happens (Sec. 3.3)."""
        from repro import NaiveAlgorithm, SequenceDatabase

        db = SequenceDatabase([["a", "b1"], ["a", "b1"]])
        params = MiningParams(1, 0, 2)
        semi = SemiNaiveAlgorithm(params).mine(db, fig1_hierarchy)
        naive = NaiveAlgorithm(params).mine(db, fig1_hierarchy)
        assert semi.decoded() == naive.decoded()

    def test_preprocess_job_attached(self, fig1_database, fig1_hierarchy):
        result = SemiNaiveAlgorithm(MiningParams(2, 1, 3)).mine(
            fig1_database, fig1_hierarchy
        )
        assert result.preprocess_job is not None
