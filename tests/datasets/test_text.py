"""Unit tests for the synthetic text corpus generator."""

import pytest

from repro.datasets import TextCorpusConfig, generate_text_corpus


@pytest.fixture(scope="module")
def corpus():
    return generate_text_corpus(
        TextCorpusConfig(num_sentences=400, num_nouns=80, num_verbs=40,
                         num_adjectives=30, num_adverbs=15, seed=7)
    )


class TestGeneration:
    def test_sentence_count(self, corpus):
        assert len(corpus.database) == 400

    def test_reproducible(self):
        config = TextCorpusConfig(num_sentences=50, seed=3)
        a = generate_text_corpus(config)
        b = generate_text_corpus(config)
        assert list(a.database) == list(b.database)

    def test_different_seeds_differ(self):
        a = generate_text_corpus(TextCorpusConfig(num_sentences=50, seed=1))
        b = generate_text_corpus(TextCorpusConfig(num_sentences=50, seed=2))
        assert list(a.database) != list(b.database)

    def test_sentences_capitalized(self, corpus):
        for sentence in corpus.database:
            assert sentence[0][0].isupper() or sentence[0][0].isdigit()

    def test_zipf_skew(self, corpus):
        """A few words dominate (Zipf), many words are rare."""
        from collections import Counter

        counts = Counter(w for s in corpus.database for w in s)
        top = counts.most_common(10)
        total = sum(counts.values())
        assert sum(c for _, c in top) > total * 0.2


class TestHierarchies:
    @pytest.mark.parametrize("variant,levels", [
        ("L", 2), ("P", 2), ("LP", 3), ("CLP", 4),
    ])
    def test_levels(self, corpus, variant, levels):
        assert corpus.hierarchy(variant).num_levels() == levels

    def test_all_forests(self, corpus):
        for variant in ("L", "P", "LP", "CLP"):
            assert corpus.hierarchy(variant).is_forest, variant

    def test_p_has_few_roots_high_fanout(self, corpus):
        """Table 2's contrast: P has few roots and huge fan-out…"""
        p = corpus.hierarchy("P")
        l = corpus.hierarchy("L")
        assert len(p.roots()) < 10
        assert len(l.roots()) > 10 * len(p.roots())
        assert max(p.fan_outs()) > max(l.fan_outs())

    def test_p_roots_are_pos_tags(self, corpus):
        assert set(corpus.hierarchy("P").roots()) <= {
            "NOUN", "VERB", "ADJ", "ADV", "DET", "PREP", "PRON",
        }

    def test_clp_chain(self, corpus):
        """Capitalized word → lowercase → lemma → POS."""
        clp = corpus.hierarchy("CLP")
        capitalized = next(
            w for s in corpus.database for w in s
            if w[0].isupper() and w.lower() in clp
            and clp.ancestors(w.lower())
        )
        chain = clp.ancestors_or_self(capitalized)
        assert 2 <= len(chain) <= 4
        assert chain[-1] in {"NOUN", "VERB", "ADJ", "ADV", "DET", "PREP", "PRON"}

    def test_words_at_multiple_levels_occur(self, corpus):
        """Input sequences mix hierarchy levels (paper Sec. 6.1)."""
        clp = corpus.hierarchy("CLP")
        words = {w for s in corpus.database for w in s}
        depths = {clp.depth(w) for w in words if w in clp}
        assert len(depths) > 1

    def test_flat_variant(self, corpus):
        flat = corpus.hierarchy("flat")
        assert flat.num_levels() == 1

    def test_unknown_variant(self, corpus):
        with pytest.raises(KeyError):
            corpus.hierarchy("XYZ")

    def test_minable(self, corpus):
        """The corpus yields generalized patterns when mined."""
        from repro import mine

        result = mine(
            corpus.database, corpus.hierarchy("P"), sigma=20, gamma=0, lam=3
        )
        patterns = result.decoded()
        assert patterns
        # generalized n-grams like ("DET", "NOUN") should be frequent
        assert any(
            any(i in {"NOUN", "VERB", "ADJ", "DET"} for i in p)
            for p in patterns
        )
