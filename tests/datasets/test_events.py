"""Tests for the event-log generator, including planted-pattern recovery."""

import pytest

from repro import MiningParams, Lash, mine
from repro.datasets import EventLogConfig, generate_event_log
from repro.datasets.stats import hierarchy_stats

SMALL = EventLogConfig(num_machines=400, avg_log_length=10, seed=11)


@pytest.fixture(scope="module")
def event_log():
    return generate_event_log(SMALL)


class TestGeneratorStructure:
    def test_determinism(self):
        a = generate_event_log(SMALL)
        b = generate_event_log(SMALL)
        assert list(a.database) == list(b.database)
        assert a.cascades == b.cascades

    def test_hierarchy_is_four_level_forest(self, event_log):
        stats = hierarchy_stats(event_log.hierarchy)
        assert stats.levels == 4
        assert event_log.hierarchy.is_forest

    def test_all_events_in_hierarchy(self, event_log):
        for log in event_log.database:
            for event in log:
                assert event in event_log.hierarchy
                assert event.startswith("evt:")

    def test_cascades_are_class_level(self, event_log):
        assert len(event_log.cascades) == SMALL.num_cascades
        for template in event_log.cascades:
            assert len(template) == SMALL.cascade_length
            assert all(c.startswith("class:") for c in template)

    def test_cascades_use_distinct_classes(self, event_log):
        used = [c for template in event_log.cascades for c in template]
        assert len(used) == len(set(used))

    def test_log_lengths_bounded(self, event_log):
        for log in event_log.database:
            assert 2 <= len(log) <= SMALL.max_log_length

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            generate_event_log(EventLogConfig(cascade_length=1))
        with pytest.raises(ValueError):
            generate_event_log(
                EventLogConfig(num_cascades=100, num_subsystems=1)
            )


class TestPlantedPatternRecovery:
    """End-to-end: LASH must recover the planted class-level cascades."""

    def test_planted_cascades_are_frequent(self, event_log):
        sigma = max(2, len(event_log.database) // 20)
        params = MiningParams(
            sigma=sigma,
            gamma=SMALL.max_interleave,
            lam=SMALL.cascade_length,
        )
        result = Lash(params).mine(event_log.database, event_log.hierarchy)
        mined = result.decoded()
        for template in event_log.planted_patterns():
            assert template in mined, template
            assert mined[template] >= sigma

    def test_cascades_invisible_to_flat_mining(self, event_log):
        """The concrete realizations vary, so flat mining cannot see the
        cascade at the same support — the GSM motivation."""
        sigma = max(2, len(event_log.database) // 20)
        flat = mine(
            event_log.database,
            hierarchy=None,
            sigma=sigma,
            gamma=SMALL.max_interleave,
            lam=SMALL.cascade_length,
        )
        planted = set(event_log.planted_patterns())
        assert not planted & set(flat.decoded())
