"""Unit tests for the synthetic product data generator."""

import pytest

from repro.datasets import ProductDataConfig, generate_product_data


@pytest.fixture(scope="module")
def data():
    return generate_product_data(
        ProductDataConfig(num_users=300, num_products=200, seed=11)
    )


class TestGeneration:
    def test_user_count(self, data):
        assert len(data.database) == 300

    def test_reproducible(self):
        config = ProductDataConfig(num_users=40, num_products=30, seed=5)
        assert list(generate_product_data(config).database) == list(
            generate_product_data(config).database
        )

    def test_sessions_contain_products(self, data):
        for session in data.database:
            assert all(p.startswith("p") for p in session)

    def test_chain_lengths_favor_4_or_less(self, data):
        """Paper: most products have no more than 4 parent categories."""
        lengths = [len(c) for c in data.chains.values()]
        short = sum(1 for l in lengths if l <= 4)
        assert short / len(lengths) > 0.8
        assert max(lengths) <= 7


class TestHierarchies:
    @pytest.mark.parametrize("levels", [2, 3, 4, 8])
    def test_levels_bounded(self, data, levels):
        h = data.hierarchy(levels)
        assert h.num_levels() <= levels
        assert h.is_forest

    def test_h2_products_under_roots(self, data):
        h2 = data.hierarchy(2)
        for product in data.chains:
            parent = h2.parent(product)
            assert parent is not None
            assert h2.parents(parent) == ()  # root category

    def test_intermediate_items_grow_with_depth(self, data):
        """Table 2: deeper variants have more intermediate items."""
        counts = [
            len(data.hierarchy(k).intermediate_items()) for k in (2, 3, 4, 8)
        ]
        assert counts[0] == 0
        assert counts == sorted(counts)
        assert counts[-1] > counts[1]

    def test_h8_vs_h4_less_pronounced(self, data):
        """Most chains stop at 4, so h8 adds relatively few items (Fig. 5e)."""
        h4 = len(data.hierarchy(4))
        h8 = len(data.hierarchy(8))
        h2 = len(data.hierarchy(2))
        h3 = len(data.hierarchy(3))
        assert (h8 - h4) < (h3 - h2) * 3  # growth flattens out

    def test_invalid_levels(self, data):
        with pytest.raises(ValueError):
            data.hierarchy(1)
        with pytest.raises(ValueError):
            data.hierarchy(99)

    def test_flat_hierarchy(self, data):
        flat = data.flat_hierarchy()
        assert flat.num_levels() == 1

    def test_minable_with_generalization(self, data):
        """Category-level patterns emerge that no product-level run finds."""
        from repro import mine

        hierarchical = mine(
            data.database, data.hierarchy(2), sigma=30, gamma=1, lam=3
        )
        flat = mine(data.database, None, sigma=30, gamma=1, lam=3)
        assert len(hierarchical) > len(flat)
