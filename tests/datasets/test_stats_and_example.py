"""Unit tests for dataset stats (Tables 1/2) and the bundled example."""

import pytest

from repro.datasets import (
    eq4_partition_sequences,
    example_database,
    example_hierarchy,
    hierarchy_stats,
)
from repro.hierarchy import Hierarchy


class TestExampleData:
    def test_database_matches_fig1(self):
        db = example_database()
        assert len(db) == 6
        assert db[0] == ("a", "b1", "a", "b1")
        assert db[5] == ("b13", "f", "d2")

    def test_hierarchy_matches_fig1(self):
        h = example_hierarchy()
        assert set(h.roots()) == {"a", "B", "c", "D", "e", "f"}
        assert h.ancestors_or_self("b12") == ("b12", "b1", "B")

    def test_eq4_partition_shape(self):
        seqs = eq4_partition_sequences()
        assert len(seqs) == 4
        assert seqs[2][2] == "_"


class TestHierarchyStats:
    def test_fig1_hierarchy_stats(self):
        s = hierarchy_stats(example_hierarchy())
        assert s.total_items == 14
        assert s.root_items == 6
        # a, c, e, f (childless roots) + b2, b3, b11, b12, b13, d1, d2
        assert s.leaf_items == 11
        assert s.intermediate_items == 1  # only b1
        assert s.levels == 3
        assert s.max_fan_out == 3
        assert s.avg_fan_out == pytest.approx(8 / 3)

    def test_flat_hierarchy_stats(self):
        s = hierarchy_stats(Hierarchy.flat(["x", "y"]))
        assert s.levels == 1
        assert s.root_items == 2
        assert s.leaf_items == 2
        assert s.avg_fan_out == 0.0
        assert s.max_fan_out == 0

    def test_row_rendering(self):
        row = hierarchy_stats(example_hierarchy()).row()
        assert row["Levels"] == 3
        assert row["Avg.fan-out"] == 2.7

    def test_empty_hierarchy(self):
        s = hierarchy_stats(Hierarchy())
        assert s.total_items == 0
        assert s.levels == 0
