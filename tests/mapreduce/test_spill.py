"""External (disk-backed) shuffle (repro.mapreduce.spill + engine).

The external shuffle must be answer- and counter-equivalent to the
in-memory shuffle, add honest spill metering, stream values lazily, and
clean its run files up — including under injected task failures.
"""

from __future__ import annotations

import pytest

from repro import Lash, MiningParams, mine
from repro.mapreduce import (
    MERGED_RUNS,
    SPILL_BYTES,
    SPILLED_RECORDS,
    C,
    FailurePlan,
    MapReduceEngine,
    MapReduceJob,
    MergedPartition,
    spill_map_output,
)
from repro.mapreduce.spill import total_spill_stats


class WordCount(MapReduceJob):
    name = "wordcount"
    has_combiner = True

    def map(self, record):
        for word in record:
            yield word, 1

    def combine(self, key, values):
        yield key, sum(values)

    def reduce(self, key, values):
        yield key, sum(values)


RECORDS = [
    ["a", "b", "a"],
    ["b", "c"],
    ["a"],
    ["c", "c", "c", "b"],
] * 5


def run_wordcount(**engine_kwargs):
    engine = MapReduceEngine(num_map_tasks=3, num_reduce_tasks=4,
                             **engine_kwargs)
    return engine.run(WordCount(), RECORDS)


# ----------------------------------------------------------------------
# equivalence with the in-memory shuffle
# ----------------------------------------------------------------------


def test_same_output_as_memory_shuffle(tmp_path):
    memory = run_wordcount()
    external = run_wordcount(spill_dir=tmp_path)
    assert sorted(external.output) == sorted(memory.output)


def test_same_logical_counters(tmp_path):
    memory = run_wordcount()
    external = run_wordcount(spill_dir=tmp_path)
    for name in (
        C.MAP_OUTPUT_RECORDS,
        C.MAP_OUTPUT_BYTES,
        C.SHUFFLE_BYTES,
        C.REDUCE_INPUT_GROUPS,
        C.REDUCE_INPUT_RECORDS,
        C.REDUCE_OUTPUT_RECORDS,
    ):
        assert external.counters[name] == memory.counters[name], name


def test_spill_counters_only_with_spilling(tmp_path):
    memory = run_wordcount()
    external = run_wordcount(spill_dir=tmp_path)
    assert memory.counters[SPILLED_RECORDS] == 0
    assert external.counters[SPILLED_RECORDS] > 0
    assert external.counters[SPILL_BYTES] > 0
    # combined records spilled = post-combine shuffle records
    assert external.counters[SPILLED_RECORDS] == external.counters[
        C.COMBINE_OUTPUT_RECORDS
    ]
    # at most map_tasks × reduce_tasks runs
    assert 0 < external.counters[MERGED_RUNS] <= 3 * 4


def test_run_files_cleaned_up(tmp_path):
    run_wordcount(spill_dir=tmp_path)
    assert list(tmp_path.rglob("*.run")) == []


def test_spill_dir_created_if_missing(tmp_path):
    target = tmp_path / "deep" / "spills"
    run_wordcount(spill_dir=target)
    assert target.exists()


def test_lash_end_to_end_with_spilling(tmp_path, fig1_database,
                                        fig1_hierarchy):
    params = MiningParams(2, 1, 3)
    memory = Lash(params).mine(fig1_database, fig1_hierarchy)
    spilled = Lash(params, spill_dir=tmp_path).mine(
        fig1_database, fig1_hierarchy
    )
    assert spilled.decoded() == memory.decoded()
    assert spilled.counters[SPILLED_RECORDS] > 0


# ----------------------------------------------------------------------
# failure interaction
# ----------------------------------------------------------------------


def test_reduce_retry_rereads_runs(tmp_path):
    """A reduce attempt that crashes mid-partition must succeed on retry
    with identical output (the merged stream is re-fetchable)."""
    plan = FailurePlan(
        reduce_failures={i: 1 for i in range(4)}, max_attempts=3
    )
    clean = run_wordcount(spill_dir=tmp_path)
    failing = run_wordcount(spill_dir=tmp_path, failure_plan=plan)
    assert sorted(failing.output) == sorted(clean.output)
    assert failing.counters[C.FAILED_REDUCE_TASKS] == 4
    assert list(tmp_path.rglob("*.run")) == []


def test_map_retry_with_spilling(tmp_path):
    plan = FailurePlan(map_failures={0: 1, 1: 1}, max_attempts=3)
    clean = run_wordcount(spill_dir=tmp_path)
    failing = run_wordcount(spill_dir=tmp_path, failure_plan=plan)
    assert sorted(failing.output) == sorted(clean.output)


# ----------------------------------------------------------------------
# spill primitives
# ----------------------------------------------------------------------


def make_runs(tmp_path, pairs_per_task, num_partitions=2):
    runs = []
    for task_id, pairs in enumerate(pairs_per_task):
        runs.extend(
            spill_map_output(
                pairs,
                num_partitions,
                lambda key: key % num_partitions,
                tmp_path,
                task_id,
            )
        )
    return runs


def test_spill_map_output_sorts_and_groups(tmp_path):
    pairs = [(3, "x"), (1, "y"), (3, "z"), (2, "w")]
    runs = spill_map_output(pairs, 1, lambda key: 0, tmp_path, 0)
    assert len(runs) == 1
    groups = list(runs[0].read_groups())
    assert groups == [(1, ["y"]), (2, ["w"]), (3, ["x", "z"])]
    records, size = total_spill_stats(runs)
    assert records == 4
    assert size == runs[0].path.stat().st_size > 0


def test_spill_partitions_by_partitioner(tmp_path):
    pairs = [(0, "a"), (1, "b"), (2, "c"), (3, "d")]
    runs = spill_map_output(pairs, 2, lambda key: key % 2, tmp_path, 7)
    assert {run.partition for run in runs} == {0, 1}
    even = next(run for run in runs if run.partition == 0)
    assert [key for key, _ in even.read_groups()] == [0, 2]


def test_empty_map_output_produces_no_runs(tmp_path):
    assert spill_map_output([], 4, lambda key: 0, tmp_path, 0) == []


def test_merged_partition_merges_across_runs(tmp_path):
    runs = make_runs(
        tmp_path,
        [
            [(2, "a"), (4, "b")],
            [(2, "c"), (6, "d")],
        ],
    )
    partition = MergedPartition(runs=[r for r in runs if r.partition == 0])
    assert sorted(partition) == [2, 4, 6]
    assert len(partition) == 3
    assert partition[2] == ["a", "c"]
    assert partition[4] == ["b"]
    assert partition[6] == ["d"]


def test_merged_partition_out_of_order_access(tmp_path):
    runs = make_runs(tmp_path, [[(0, "a"), (2, "b"), (4, "c")]])
    partition = MergedPartition(runs=runs)
    # access the last key first: earlier groups get buffered
    assert partition[4] == ["c"]
    assert partition[0] == ["a"]
    assert partition[2] == ["b"]


def test_merged_partition_replay_after_exhaustion(tmp_path):
    runs = make_runs(tmp_path, [[(0, "a"), (2, "b")]])
    partition = MergedPartition(runs=runs)
    assert partition[0] == ["a"]
    assert partition[2] == ["b"]
    # stream exhausted; a retry starts over from the run files
    assert partition[0] == ["a"]


def test_merged_partition_missing_key(tmp_path):
    runs = make_runs(tmp_path, [[(0, "a")]])
    partition = MergedPartition(runs=runs)
    with pytest.raises(KeyError):
        partition[99]


def test_merged_partition_empty():
    partition = MergedPartition(runs=[])
    assert len(partition) == 0
    assert list(partition) == []


def test_tuple_keys_roundtrip(tmp_path):
    """LASH's reconcile job keys by pattern tuples; tuple ordering must
    survive the spill."""
    pairs = [((1, 2), "x"), ((1, 1), "y"), ((0, 9), "z")]
    runs = spill_map_output(pairs, 1, lambda key: 0, tmp_path, 0)
    keys = [key for key, _ in runs[0].read_groups()]
    assert keys == [(0, 9), (1, 1), (1, 2)]
