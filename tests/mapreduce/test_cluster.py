"""Unit tests for cluster placement simulation."""

import pytest

from repro.mapreduce import (
    ClusterSpec,
    JobMetrics,
    PhaseTimes,
    schedule_makespan,
    simulate_cluster,
)


class TestScheduleMakespan:
    def test_single_slot_sums(self):
        assert schedule_makespan([1.0, 2.0, 3.0], 1) == pytest.approx(6.0)

    def test_enough_slots_takes_max(self):
        assert schedule_makespan([1.0, 2.0, 3.0], 3) == pytest.approx(3.0)

    def test_lpt_schedule(self):
        # LPT on {3,3,2,2,2} with 2 slots: (3,2,2) vs (3,2) -> makespan 7
        # (greedy, like Hadoop's scheduler — not the optimal 6)
        assert schedule_makespan([3, 3, 2, 2, 2], 2) == pytest.approx(7.0)

    def test_lpt_never_worse_than_4_3_optimum(self):
        # classic LPT bound: makespan <= (4/3 - 1/3m) * OPT
        tasks = [5, 5, 4, 4, 3, 3, 3]
        got = schedule_makespan(tasks, 3)
        lower = max(max(tasks), sum(tasks) / 3)
        assert got <= (4 / 3) * lower + 1e-9

    def test_empty(self):
        assert schedule_makespan([], 4) == 0.0

    def test_invalid_slots(self):
        with pytest.raises(ValueError):
            schedule_makespan([1.0], 0)

    def test_monotone_in_slots(self):
        tasks = [0.5, 1.5, 0.7, 2.0, 0.1, 1.1]
        times = [schedule_makespan(tasks, s) for s in (1, 2, 4, 8)]
        assert times == sorted(times, reverse=True)


class TestClusterSpec:
    def test_paper_default(self):
        c = ClusterSpec()
        assert c.map_slots == 80
        assert c.reduce_slots == 80

    def test_network_seconds(self):
        c = ClusterSpec(nodes=1, network_gbps=8.0)
        assert c.network_seconds(10**9) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterSpec(nodes=0)
        with pytest.raises(ValueError):
            ClusterSpec(map_slots_per_node=0)
        with pytest.raises(ValueError):
            ClusterSpec(network_gbps=0)


class TestSimulateCluster:
    def metrics(self) -> JobMetrics:
        return JobMetrics(
            map_task_s=[1.0] * 8,
            reduce_task_s=[2.0] * 4,
            shuffle_s=0.8,
            shuffle_bytes=10**9,
        )

    def test_strong_scaling_shape(self):
        """Doubling nodes roughly halves phase makespans (Fig. 6(b))."""
        m = self.metrics()
        t2 = simulate_cluster(m, ClusterSpec(nodes=2, map_slots_per_node=2,
                                             reduce_slots_per_node=1))
        t4 = simulate_cluster(m, ClusterSpec(nodes=4, map_slots_per_node=2,
                                             reduce_slots_per_node=1))
        assert t2.map_s == pytest.approx(2 * t4.map_s)
        assert t2.reduce_s == pytest.approx(2 * t4.reduce_s)
        assert t2.total_s > t4.total_s

    def test_phase_times_addition(self):
        p = PhaseTimes(1.0, 0.5, 2.0) + PhaseTimes(1.0, 0.5, 1.0)
        assert p.map_s == 2.0
        assert p.total_s == pytest.approx(6.0)

    def test_row_rendering(self):
        row = PhaseTimes(1.0, 0.5, 2.0).row()
        assert row["Total"] == 3.5


class TestJobMetrics:
    def test_serial_phase_times(self):
        m = JobMetrics(map_task_s=[1, 2], reduce_task_s=[3], shuffle_s=0.5)
        p = m.serial_phase_times()
        assert p.map_s == 3
        assert p.reduce_s == 3
        assert p.shuffle_s == 0.5

    def test_merge(self):
        a = JobMetrics(map_task_s=[1.0], shuffle_bytes=10)
        b = JobMetrics(map_task_s=[2.0], reduce_task_s=[1.0], shuffle_bytes=5)
        a.merge(b)
        assert a.map_task_s == [1.0, 2.0]
        assert a.shuffle_bytes == 15
