"""Unit tests for the in-process MapReduce engine."""

import pytest

from repro.mapreduce import C, MapReduceEngine, MapReduceJob, stable_hash


class WordCount(MapReduceJob):
    """The classic job; combiner pre-sums counts."""

    name = "wordcount"
    has_combiner = True

    def map(self, record):
        for word in record.split():
            yield word, 1

    def combine(self, key, values):
        yield key, sum(values)

    def reduce(self, key, values):
        yield key, sum(values)


class NoCombinerJob(MapReduceJob):
    name = "identity"

    def map(self, record):
        yield record % 3, record

    def reduce(self, key, values):
        yield key, sorted(values)


LINES = ["a b a", "b c", "a", "c c c"]


class TestWordCount:
    def test_counts(self):
        result = MapReduceEngine().run(WordCount(), LINES)
        assert dict(result.output) == {"a": 3, "b": 2, "c": 4}

    def test_counters(self):
        result = MapReduceEngine().run(WordCount(), LINES)
        c = result.counters
        assert c[C.MAP_INPUT_RECORDS] == 4
        assert c[C.MAP_OUTPUT_RECORDS] == 9
        assert c[C.MAP_OUTPUT_BYTES] > 0
        assert c[C.REDUCE_OUTPUT_RECORDS] == 3

    def test_combiner_reduces_shuffle(self):
        # one split => combiner sums everything; shuffle carries 3 records
        result = MapReduceEngine(num_map_tasks=1).run(WordCount(), LINES)
        c = result.counters
        assert c[C.COMBINE_OUTPUT_RECORDS] == 3
        assert c[C.SHUFFLE_BYTES] < c[C.MAP_OUTPUT_BYTES]

    def test_result_independent_of_split_count(self):
        results = [
            sorted(MapReduceEngine(num_map_tasks=m, num_reduce_tasks=r)
                   .run(WordCount(), LINES).output)
            for m, r in [(1, 1), (2, 3), (8, 8), (50, 2)]
        ]
        assert all(r == results[0] for r in results)

    def test_empty_input(self):
        result = MapReduceEngine().run(WordCount(), [])
        assert result.output == []
        assert result.counters[C.MAP_INPUT_RECORDS] == 0


class TestEngineMechanics:
    def test_no_combiner_passthrough(self):
        result = MapReduceEngine(num_map_tasks=2).run(
            NoCombinerJob(), list(range(7))
        )
        as_dict = dict(result.output)
        assert as_dict[0] == [0, 3, 6]
        assert as_dict[1] == [1, 4]
        assert result.counters[C.COMBINE_OUTPUT_RECORDS] == 0
        # identity shuffle: bytes equal map output bytes
        assert (
            result.counters[C.SHUFFLE_BYTES]
            == result.counters[C.MAP_OUTPUT_BYTES]
        )

    def test_metrics_have_task_entries(self):
        result = MapReduceEngine(num_map_tasks=3, num_reduce_tasks=2).run(
            WordCount(), LINES
        )
        assert len(result.metrics.map_task_s) == 3
        assert len(result.metrics.reduce_task_s) == 2
        assert all(t >= 0 for t in result.metrics.map_task_s)

    def test_more_tasks_than_records(self):
        result = MapReduceEngine(num_map_tasks=100).run(WordCount(), LINES)
        assert len(result.metrics.map_task_s) == 4  # capped at record count

    def test_invalid_task_counts(self):
        with pytest.raises(ValueError):
            MapReduceEngine(num_map_tasks=0)
        with pytest.raises(ValueError):
            MapReduceEngine(num_reduce_tasks=0)

    def test_reduce_sees_sorted_keys_per_partition(self):
        seen = []

        class Probe(MapReduceJob):
            def map(self, record):
                yield record, 1

            def reduce(self, key, values):
                seen.append(key)
                yield key, len(values)

        MapReduceEngine(num_reduce_tasks=1).run(Probe(), [5, 3, 9, 1])
        assert seen == [1, 3, 5, 9]


class TestStableHash:
    def test_deterministic_for_strings(self):
        assert stable_hash("pivot") == stable_hash("pivot")

    def test_types(self):
        assert isinstance(stable_hash(42), int)
        assert isinstance(stable_hash((1, 2, 3)), int)
        assert isinstance(stable_hash(b"xy"), int)

    def test_distinguishes_tuples(self):
        assert stable_hash((1, 2)) != stable_hash((2, 1))

    def test_negative_ints(self):
        assert stable_hash(-1) != stable_hash(1)

    def test_rejects_unsupported(self):
        with pytest.raises(TypeError):
            stable_hash(3.14)

    def test_known_stability(self):
        # guards against accidental algorithm changes breaking partition
        # layout reproducibility across runs
        assert stable_hash("a") % 8 == stable_hash("a") % 8
        assert stable_hash((0, 1)) == stable_hash((0, 1))
