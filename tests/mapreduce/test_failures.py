"""Fault-tolerance tests: injected failures must be invisible in results."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Lash, MiningParams
from repro.mapreduce import (
    C,
    FailurePlan,
    MapReduceEngine,
    TaskRetriesExceededError,
)
from repro.mapreduce.job import MapReduceJob


class WordCount(MapReduceJob):
    name = "wordcount"
    has_combiner = True

    def map(self, record):
        for word in record:
            yield word, 1

    def combine(self, key, values):
        yield key, sum(values)

    def reduce(self, key, values):
        yield key, sum(values)


RECORDS = [("a", "b"), ("b",), ("a", "a", "c"), ("c", "b")] * 5


def run(engine):
    result = engine.run(WordCount(), RECORDS)
    return dict(result.output), result


class TestFailurePlanValidation:
    def test_probability_range(self):
        with pytest.raises(ValueError):
            FailurePlan(probability=1.5)

    def test_max_attempts_positive(self):
        with pytest.raises(ValueError):
            FailurePlan(max_attempts=0)

    def test_should_fail_planned(self):
        plan = FailurePlan(map_failures={1: 2})
        assert plan.should_fail("map", 1, 0)
        assert plan.should_fail("map", 1, 1)
        assert not plan.should_fail("map", 1, 2)
        assert not plan.should_fail("map", 0, 0)
        assert not plan.should_fail("reduce", 1, 0)

    def test_crash_point_deterministic_and_bounded(self):
        plan = FailurePlan(probability=1.0, seed=3)
        a = plan.crash_point("map", 0, 0, 100)
        b = plan.crash_point("map", 0, 0, 100)
        assert a == b
        assert 0 <= a < 100
        assert plan.crash_point("map", 0, 0, 0) == 0


class TestFailuresInvisibleInResults:
    def test_output_identical_with_map_failures(self):
        clean, clean_result = run(MapReduceEngine(4, 2))
        plan = FailurePlan(map_failures={0: 1, 2: 3}, max_attempts=4)
        failed, failed_result = run(MapReduceEngine(4, 2, failure_plan=plan))
        assert failed == clean

    def test_output_identical_with_reduce_failures(self):
        clean, _ = run(MapReduceEngine(4, 2))
        plan = FailurePlan(reduce_failures={0: 2, 1: 1})
        failed, _ = run(MapReduceEngine(4, 2, failure_plan=plan))
        assert failed == clean

    def test_logical_counters_not_double_counted(self):
        _, clean = run(MapReduceEngine(4, 2))
        plan = FailurePlan(map_failures={0: 2}, reduce_failures={1: 1})
        _, failed = run(MapReduceEngine(4, 2, failure_plan=plan))
        for counter in (
            C.MAP_INPUT_RECORDS,
            C.MAP_OUTPUT_RECORDS,
            C.MAP_OUTPUT_BYTES,
            C.SHUFFLE_BYTES,
            C.REDUCE_INPUT_RECORDS,
            C.REDUCE_OUTPUT_RECORDS,
        ):
            assert failed.counters[counter] == clean.counters[counter], counter

    def test_failure_bookkeeping(self):
        plan = FailurePlan(map_failures={0: 2}, reduce_failures={1: 1})
        _, result = run(MapReduceEngine(4, 2, failure_plan=plan))
        assert result.counters[C.FAILED_MAP_TASKS] == 2
        assert result.counters[C.FAILED_REDUCE_TASKS] == 1
        assert len(result.metrics.failed_map_task_s) == 2
        assert len(result.metrics.failed_reduce_task_s) == 1
        assert result.metrics.wasted_s() >= 0.0

    def test_successful_task_profile_unpolluted(self):
        plan = FailurePlan(map_failures={0: 3})
        _, result = run(MapReduceEngine(4, 2, failure_plan=plan))
        assert len(result.metrics.map_task_s) == 4
        assert len(result.metrics.reduce_task_s) == 2


class TestRetryExhaustion:
    def test_permanent_failure_raises(self):
        plan = FailurePlan(map_failures={0: 99}, max_attempts=4)
        engine = MapReduceEngine(2, 2, failure_plan=plan)
        with pytest.raises(TaskRetriesExceededError) as info:
            engine.run(WordCount(), RECORDS)
        assert info.value.phase == "map"
        assert info.value.attempts == 4

    def test_probability_one_always_fails(self):
        plan = FailurePlan(probability=1.0, max_attempts=3)
        engine = MapReduceEngine(2, 2, failure_plan=plan)
        with pytest.raises(TaskRetriesExceededError):
            engine.run(WordCount(), RECORDS)


class TestLashUnderFailures:
    def test_mining_result_unchanged(self, fig1_database, fig1_hierarchy):
        params = MiningParams(2, 1, 3)
        clean = Lash(params).mine(fig1_database, fig1_hierarchy)
        plan = FailurePlan(
            map_failures={0: 1, 3: 2}, reduce_failures={2: 1}
        )
        failed = Lash(params, failure_plan=plan).mine(
            fig1_database, fig1_hierarchy
        )
        assert failed.decoded() == clean.decoded()
        total = failed.total_metrics()
        assert len(total.failed_map_task_s) >= 2


@settings(max_examples=25, deadline=None)
@given(
    probability=st.floats(0.0, 0.6),
    seed=st.integers(0, 10**6),
)
def test_random_failures_never_change_output(probability, seed):
    """With max_attempts high enough, any random plan yields clean output."""
    clean, _ = run(MapReduceEngine(4, 3))
    plan = FailurePlan(probability=probability, seed=seed, max_attempts=50)
    failed, result = run(MapReduceEngine(4, 3, failure_plan=plan))
    assert failed == clean
    failures = (
        result.counters[C.FAILED_MAP_TASKS]
        + result.counters[C.FAILED_REDUCE_TASKS]
    )
    assert failures == len(result.metrics.failed_map_task_s) + len(
        result.metrics.failed_reduce_task_s
    )
