"""Process-parallel engine (repro.mapreduce.parallel).

The parallel engine must be a drop-in replacement: identical outputs and
logical counters for every job in the library.
"""

from __future__ import annotations

import pytest

from repro import Lash, MiningParams
from repro.errors import InvalidParameterError
from repro.mapreduce import (
    C,
    MapReduceEngine,
    MapReduceJob,
    ParallelMapReduceEngine,
)


class WordCount(MapReduceJob):
    name = "wordcount"
    has_combiner = True

    def map(self, record):
        for word in record:
            yield word, 1

    def combine(self, key, values):
        yield key, sum(values)

    def reduce(self, key, values):
        yield key, sum(values)


RECORDS = [["a", "b", "a"], ["b", "c"], ["a"], ["c", "c", "b"]] * 4


def test_same_output_as_serial():
    serial = MapReduceEngine(num_map_tasks=3, num_reduce_tasks=4).run(
        WordCount(), RECORDS
    )
    parallel = ParallelMapReduceEngine(
        num_map_tasks=3, num_reduce_tasks=4, max_workers=2
    ).run(WordCount(), RECORDS)
    assert sorted(parallel.output) == sorted(serial.output)


def test_same_logical_counters():
    serial = MapReduceEngine(num_map_tasks=3, num_reduce_tasks=4).run(
        WordCount(), RECORDS
    )
    parallel = ParallelMapReduceEngine(
        num_map_tasks=3, num_reduce_tasks=4, max_workers=2
    ).run(WordCount(), RECORDS)
    for name in (
        C.MAP_INPUT_RECORDS,
        C.MAP_OUTPUT_RECORDS,
        C.MAP_OUTPUT_BYTES,
        C.SHUFFLE_BYTES,
        C.REDUCE_INPUT_GROUPS,
        C.REDUCE_INPUT_RECORDS,
        C.REDUCE_OUTPUT_RECORDS,
    ):
        assert parallel.counters[name] == serial.counters[name], name


def test_task_metrics_recorded():
    result = ParallelMapReduceEngine(
        num_map_tasks=3, num_reduce_tasks=4, max_workers=2
    ).run(WordCount(), RECORDS)
    assert len(result.metrics.map_task_s) == 3
    assert len(result.metrics.reduce_task_s) == 4
    assert all(t >= 0 for t in result.metrics.map_task_s)


def test_lash_with_parallel_engine(fig1_database, fig1_hierarchy):
    """The full LASH pipeline (both jobs) runs under the pool and
    matches the serial answer."""
    params = MiningParams(2, 1, 3)
    serial = Lash(params).mine(fig1_database, fig1_hierarchy)
    lash = Lash(params)
    lash.engine = ParallelMapReduceEngine(
        num_map_tasks=4, num_reduce_tasks=4, max_workers=2
    )
    parallel = lash.mine(fig1_database, fig1_hierarchy)
    assert parallel.decoded() == serial.decoded()
    assert (
        parallel.counters["SHUFFLE_BYTES"]
        == serial.counters["SHUFFLE_BYTES"]
    )


def test_exploration_stats_shipped_back(fig1_database, fig1_hierarchy):
    """Workers' local-miner search-space accounting is aggregated into
    the driver's miner: Fig. 4(d)-style measurements no longer require
    the serial engine."""
    params = MiningParams(2, 1, 3)
    serial = Lash(params).mine(fig1_database, fig1_hierarchy)
    lash = Lash(params)
    lash.engine = ParallelMapReduceEngine(
        num_map_tasks=4, num_reduce_tasks=4, max_workers=2
    )
    parallel = lash.mine(fig1_database, fig1_hierarchy)
    assert parallel.local_stats.candidates == serial.local_stats.candidates
    assert parallel.local_stats.outputs == serial.local_stats.outputs
    assert parallel.local_stats.candidates > 0
    assert (
        parallel.local_stats.candidates_per_output()
        == serial.local_stats.candidates_per_output()
    )


def test_exploration_stats_not_double_counted(fig1_database, fig1_hierarchy):
    """A driver miner that already carries stats accumulates only
    per-task deltas from the workers — the pickled copies' pre-existing
    counts are zeroed worker-side, never echoed back."""
    from repro.core.lash import PartitionMineJob

    params = MiningParams(2, 1, 3)
    expected = Lash(params).mine(
        fig1_database, fig1_hierarchy
    ).local_stats.candidates

    lash = Lash(params)
    vocabulary, _ = lash.preprocess(fig1_database, fig1_hierarchy)
    miner = lash.miner_factory(vocabulary, params)
    miner.stats.candidates = 7  # pre-existing driver-side accounting
    job = PartitionMineJob(vocabulary, params, miner, lash.rewrite_plan)
    encoded = [vocabulary.encode_sequence(seq) for seq in fig1_database]
    ParallelMapReduceEngine(
        num_map_tasks=4, num_reduce_tasks=4, max_workers=2
    ).run(job, encoded)
    assert miner.stats.candidates == 7 + expected


def test_closedlash_with_parallel_engine(fig1_database, fig1_hierarchy):
    from repro import ClosedLash

    params = MiningParams(2, 1, 3)
    serial = ClosedLash(params, mode="maximal").mine(
        fig1_database, fig1_hierarchy
    )
    driver = ClosedLash(params, mode="maximal")
    driver.engine = ParallelMapReduceEngine(
        num_map_tasks=4, num_reduce_tasks=4, max_workers=2
    )
    parallel = driver.mine(fig1_database, fig1_hierarchy)
    assert parallel.patterns == serial.patterns


def test_default_worker_count_bounded():
    engine = ParallelMapReduceEngine(num_map_tasks=2, num_reduce_tasks=8)
    assert 1 <= engine.max_workers <= 2


def test_invalid_worker_count():
    with pytest.raises(InvalidParameterError):
        ParallelMapReduceEngine(max_workers=0)


def test_single_worker_degenerates_gracefully():
    result = ParallelMapReduceEngine(
        num_map_tasks=2, num_reduce_tasks=2, max_workers=1
    ).run(WordCount(), RECORDS)
    serial = MapReduceEngine(num_map_tasks=2, num_reduce_tasks=2).run(
        WordCount(), RECORDS
    )
    assert sorted(result.output) == sorted(serial.output)
