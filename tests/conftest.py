"""Shared fixtures: the paper's running example (Fig. 1) and helpers."""

from __future__ import annotations

import pytest

from repro.hierarchy import Hierarchy, build_vocabulary
from repro.sequence import SequenceDatabase


def paper_hierarchy() -> Hierarchy:
    """The hierarchy of Fig. 1(b)."""
    h = Hierarchy()
    for root in ("a", "B", "c", "D", "e", "f"):
        h.add_item(root)
    for child in ("b1", "b2", "b3"):
        h.add_edge(child, "B")
    for child in ("b11", "b12", "b13"):
        h.add_edge(child, "b1")
    for child in ("d1", "d2"):
        h.add_edge(child, "D")
    return h


def paper_database() -> SequenceDatabase:
    """The sequence database of Fig. 1(a)."""
    return SequenceDatabase(
        [
            ["a", "b1", "a", "b1"],  # T1
            ["a", "b3", "c", "c", "b2"],  # T2
            ["a", "c"],  # T3
            ["b11", "a", "e", "a"],  # T4
            ["a", "b12", "d1", "c"],  # T5
            ["b13", "f", "d2"],  # T6
        ]
    )


@pytest.fixture
def fig1_hierarchy() -> Hierarchy:
    return paper_hierarchy()


@pytest.fixture
def fig1_database() -> SequenceDatabase:
    return paper_database()


@pytest.fixture
def fig1_vocabulary(fig1_database, fig1_hierarchy):
    return build_vocabulary(fig1_database, fig1_hierarchy)
