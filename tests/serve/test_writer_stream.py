"""Streaming PatternWriter: byte-identity, spilling, and lifecycle."""

import os
import random

import pytest

from repro.errors import EncodingError
from repro.hierarchy import Hierarchy
from repro.query import code_patterns
from repro.query.base import rank_patterns
from repro.serve import (
    PatternStore,
    PatternWriter,
    ShardedPatternWriter,
    open_store,
    write_sharded_store,
    write_store,
)
from repro.serve.format import shard_filename
from repro.serve.stream import sorted_records, sum_equal_patterns


def _random_patterns(seed, n_patterns, n_items=30):
    rng = random.Random(seed)
    items = [f"i{k:02d}" for k in range(n_items)]
    patterns = {}
    while len(patterns) < n_patterns:
        length = rng.randint(1, 4)
        pattern = tuple(rng.choice(items) for _ in range(length))
        patterns[pattern] = rng.randint(1, 60)
    return code_patterns(patterns, Hierarchy.flat(items))


class TestStreamedBytesIdentity:
    @pytest.mark.parametrize("seed", range(3))
    def test_streamed_equals_mapping_write(self, tmp_path, seed):
        coded, vocabulary = _random_patterns(seed, 400)
        reference = tmp_path / "reference.store"
        write_store(reference, coded, vocabulary)
        streamed = tmp_path / "streamed.store"
        with PatternWriter(streamed, vocabulary) as writer:
            for pattern, frequency in rank_patterns(coded):
                writer.write(pattern, frequency)
        assert streamed.read_bytes() == reference.read_bytes()

    def test_tiny_buffers_force_spills_same_bytes(self, tmp_path):
        """Spill-to-temp sections and postings runs must not change a
        single output byte relative to the all-in-memory path."""
        coded, vocabulary = _random_patterns(11, 600)
        reference = tmp_path / "reference.store"
        write_store(reference, coded, vocabulary)
        spilled = tmp_path / "spilled.store"
        with PatternWriter(
            spilled, vocabulary, buffer_bytes=32, postings_buffer=7
        ) as writer:
            for pattern, frequency in rank_patterns(coded):
                writer.write(pattern, frequency)
        assert spilled.read_bytes() == reference.read_bytes()

    def test_sharded_router_equals_mapping_write(self, tmp_path):
        coded, vocabulary = _random_patterns(5, 300)
        reference = tmp_path / "reference.shards"
        write_sharded_store(reference, coded, vocabulary, shards=4)
        streamed = tmp_path / "streamed.shards"
        with ShardedPatternWriter(streamed, vocabulary, shards=4) as writer:
            for pattern, frequency in rank_patterns(coded):
                writer.write(pattern, frequency)
        for i in range(4):
            name = shard_filename(i, 4)
            assert (streamed / name).read_bytes() == (
                reference / name
            ).read_bytes(), name

    def test_empty_store_round_trips(self, tmp_path):
        _, vocabulary = _random_patterns(1, 5)
        path = tmp_path / "empty.store"
        with PatternWriter(path, vocabulary) as writer:
            assert writer.count == 0
        with PatternStore.open(path) as store:
            assert len(store) == 0
            assert store.search("*") == []


class TestStreamValidation:
    def test_out_of_rank_order_rejected(self, tmp_path):
        coded, vocabulary = _random_patterns(2, 10)
        ordered = rank_patterns(coded)
        writer = PatternWriter(tmp_path / "bad.store", vocabulary)
        writer.write(*ordered[1])
        with pytest.raises(EncodingError, match="rank order"):
            writer.write(*ordered[0])
        writer.abort()
        assert not (tmp_path / "bad.store").exists()

    def test_duplicate_record_rejected(self, tmp_path):
        coded, vocabulary = _random_patterns(3, 10)
        record = rank_patterns(coded)[0]
        writer = PatternWriter(tmp_path / "dup.store", vocabulary)
        writer.write(*record)
        with pytest.raises(EncodingError, match="rank order"):
            writer.write(*record)
        writer.abort()

    def test_empty_pattern_rejected(self, tmp_path):
        _, vocabulary = _random_patterns(4, 5)
        writer = PatternWriter(tmp_path / "empty.store", vocabulary)
        with pytest.raises(EncodingError, match="empty pattern"):
            writer.write((), 3)
        writer.abort()

    def test_out_of_vocabulary_item_rejected(self, tmp_path):
        _, vocabulary = _random_patterns(6, 5)
        writer = PatternWriter(tmp_path / "oov.store", vocabulary)
        with pytest.raises(EncodingError, match="outside the vocabulary"):
            writer.write((len(vocabulary),), 1)
        writer.abort()

    def test_write_after_close_rejected(self, tmp_path):
        coded, vocabulary = _random_patterns(7, 10)
        writer = PatternWriter(tmp_path / "closed.store", vocabulary)
        writer.close()
        with pytest.raises(EncodingError, match="closed"):
            writer.write(*rank_patterns(coded)[0])


class TestLifecycle:
    def test_abort_leaves_no_files(self, tmp_path):
        coded, vocabulary = _random_patterns(8, 200)
        writer = PatternWriter(
            tmp_path / "aborted.store", vocabulary, buffer_bytes=16,
            postings_buffer=4,
        )
        for pattern, frequency in rank_patterns(coded):
            writer.write(pattern, frequency)
        writer.abort()
        assert os.listdir(tmp_path) == []

    def test_context_manager_aborts_on_exception(self, tmp_path):
        coded, vocabulary = _random_patterns(9, 50)
        with pytest.raises(RuntimeError):
            with PatternWriter(tmp_path / "cm.store", vocabulary) as writer:
                writer.write(*rank_patterns(coded)[0])
                raise RuntimeError("boom")
        assert os.listdir(tmp_path) == []

    def test_sharded_abort_removes_build_tmp(self, tmp_path):
        coded, vocabulary = _random_patterns(10, 50)
        writer = ShardedPatternWriter(
            tmp_path / "set.shards", vocabulary, shards=3
        )
        for pattern, frequency in rank_patterns(coded):
            writer.write(pattern, frequency)
        writer.abort()
        assert os.listdir(tmp_path) == []

    def test_writer_counters(self, tmp_path):
        coded, vocabulary = _random_patterns(12, 40)
        with PatternWriter(tmp_path / "c.store", vocabulary) as writer:
            for pattern, frequency in rank_patterns(coded):
                writer.write(pattern, frequency)
        assert writer.count == len(coded)
        assert writer.total_frequency == sum(coded.values())


class TestExternalSort:
    @pytest.mark.parametrize("buffer_records", [1, 3, 7, 10_000])
    def test_sorted_records_any_buffer(self, tmp_path, buffer_records):
        rng = random.Random(13)
        records = [
            (tuple(rng.randrange(20) for _ in range(rng.randint(1, 4))),
             rng.randint(1, 9))
            for _ in range(200)
        ]
        expected = sorted(records, key=lambda r: r[0])
        got = list(
            sorted_records(
                iter(records), key=lambda r: r[0],
                buffer_records=buffer_records, spill_dir=tmp_path,
            )
        )
        assert got == expected
        # all spill runs deleted once the stream is exhausted
        assert os.listdir(tmp_path) == []

    def test_sum_equal_patterns(self):
        stream = [((1,), 2), ((1,), 3), ((2, 1), 4), ((3,), 1), ((3,), 1)]
        assert list(sum_equal_patterns(stream)) == [
            ((1,), 5), ((2, 1), 4), ((3,), 2)
        ]
        assert list(sum_equal_patterns([])) == []


class TestMergeStreaming:
    def test_merge_small_buffer_equals_default(self, tmp_path):
        from repro.serve import merge_stores

        coded_a, vocab_a = _random_patterns(20, 250)
        coded_b, vocab_b = _random_patterns(21, 250)
        a, b = tmp_path / "a.store", tmp_path / "b.store"
        write_store(a, coded_a, vocab_a)
        write_store(b, coded_b, vocab_b)
        small = tmp_path / "small.store"
        merge_stores([a, b], small, sort_buffer=17)
        default = tmp_path / "default.store"
        merge_stores([a, b], default)
        assert small.read_bytes() == default.read_bytes()
        with open_store(small) as store:
            assert len(store) > 0
