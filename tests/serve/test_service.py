"""QueryService: LRU caching, batching, stats and error accounting."""

import pytest

from repro.errors import InvalidParameterError, UnknownItemError
from repro.hierarchy import Hierarchy
from repro.query import PatternIndex, code_patterns
from repro.serve import QueryService


@pytest.fixture
def backend():
    patterns = {
        ("a", "B"): 9,
        ("a", "b1"): 5,
        ("a",): 12,
        ("c", "a"): 3,
        ("B", "c"): 2,
    }
    hierarchy = Hierarchy()
    for root in ("a", "B", "c"):
        hierarchy.add_item(root)
    hierarchy.add_edge("b1", "B")
    coded, vocabulary = code_patterns(patterns, hierarchy)
    return PatternIndex(coded, vocabulary)


class TestQueryApi:
    def test_query_shape(self, backend):
        service = QueryService(backend)
        response = service.query("a ?")
        assert response["query"] == "a ?"
        assert response["count"] == 2
        assert response["total_frequency"] == 14
        assert response["matches"][0] == {"pattern": "a B", "frequency": 9}

    def test_query_limit_reports_true_totals(self, backend):
        service = QueryService(backend)
        response = service.query("a ?", limit=1)
        assert len(response["matches"]) == 1
        assert response["count"] == 2
        assert response["truncated"] is True

    def test_count(self, backend):
        service = QueryService(backend)
        assert service.count("? ?")["count"] == 4

    def test_topk(self, backend):
        service = QueryService(backend)
        matches = service.topk(2)["matches"]
        assert [m["pattern"] for m in matches] == ["a", "a B"]

    def test_batch(self, backend):
        service = QueryService(backend)
        results = service.batch(["a ?", "? ?"], limit=None)
        assert [r["count"] for r in results] == [2, 4]

    def test_batch_isolates_bad_queries(self, backend):
        service = QueryService(backend)
        results = service.batch(["a ?", "nosuchitem", "? ?"])
        assert results[0]["count"] == 2
        assert "nosuchitem" in results[1]["error"]
        assert "matches" not in results[1]
        assert results[2]["count"] == 4

    def test_unknown_item_raises_and_counts(self, backend):
        service = QueryService(backend)
        with pytest.raises(UnknownItemError):
            service.query("nosuchitem")
        assert service.stats()["errors"] == 1

    def test_negative_cache_size_rejected(self, backend):
        with pytest.raises(InvalidParameterError):
            QueryService(backend, cache_size=-1)

    @pytest.mark.parametrize("limit", [0, -1])
    def test_non_positive_limit_rejected(self, backend, limit):
        service = QueryService(backend)
        with pytest.raises(InvalidParameterError, match="limit"):
            service.query("a ?", limit=limit)
        stats = service.stats()
        assert stats["errors"] == 1
        assert stats["queries"] == 1

    @pytest.mark.parametrize("n", [0, -5])
    def test_non_positive_topk_rejected(self, backend, n):
        service = QueryService(backend)
        with pytest.raises(InvalidParameterError, match="n must be"):
            service.topk(n)

    def test_topk_clamped_to_cache_cap(self, backend):
        service = QueryService(backend, max_cached_matches=2)
        response = service.topk(10**9)
        assert response["k"] == 2
        assert len(response["matches"]) == 2
        # huge n values collapse onto one cache entry
        service.topk(10**6)
        assert service.stats()["cache_hits"] == 1


class TestLruCache:
    def test_repeat_query_hits_cache(self, backend):
        service = QueryService(backend, cache_size=8)
        first = service.query("a ?")
        second = service.query("a ?")
        assert first == second
        stats = service.stats()
        assert stats["queries"] == 2
        assert stats["cache_hits"] == 1
        assert stats["cache_hit_rate"] == 0.5

    def test_distinct_limits_share_one_entry(self, backend):
        service = QueryService(backend, cache_size=8)
        service.query("a ?", limit=1)
        service.query("a ?", limit=2)
        assert service.stats()["cache_hits"] == 1
        assert service.stats()["cache_entries"] == 1

    def test_eviction_is_cost_weighted_lru(self, backend):
        """Eviction weighs estimated recomputation cost, not recency
        alone: among the oldest entries the *cheapest* one goes, even
        if it was touched more recently than an expensive scan."""
        service = QueryService(backend, cache_size=2)
        costs = {
            "a ?": service.query("a ?")["estimated_cost"],
            "? ?": service.query("? ?")["estimated_cost"],
        }
        assert costs["a ?"] != costs["? ?"], "fixture queries price equal"
        cheap = min(costs, key=costs.get)
        expensive = max(costs, key=costs.get)
        service.query(cheap)      # hit → cheap entry is most recent
        service.query("c ?")      # overflow: evicts cheap, not expensive
        assert service.stats()["cache_entries"] == 2
        assert service.stats()["cache_evictions"] == 1
        hits_before = service.stats()["cache_hits"]
        service.query(expensive)  # the pricey scan survived the churn
        assert service.stats()["cache_hits"] == hits_before + 1
        hits_before = service.stats()["cache_hits"]
        service.query(cheap)      # was evicted → recomputed
        assert service.stats()["cache_hits"] == hits_before

    def test_cache_disabled(self, backend):
        service = QueryService(backend, cache_size=0)
        service.query("a ?")
        service.query("a ?")
        stats = service.stats()
        assert stats["cache_hits"] == 0
        assert stats["cache_entries"] == 0

    def test_cached_prefix_is_capped_but_answers_stay_complete(
        self, backend
    ):
        service = QueryService(backend, max_cached_matches=2)
        full = service.query("? ?", limit=None)
        assert len(full["matches"]) == full["count"] == 4  # recompute path
        assert full["truncated"] is False
        # the cached entry holds only the capped prefix
        small = service.query("? ?", limit=2)
        assert len(small["matches"]) == 2
        assert small["count"] == 4
        assert service.stats()["cache_hits"] == 1
        # counts stay exact even though the list was capped
        assert service.count("? ?")["count"] == 4

    def test_cold_overflow_searches_once(self, backend):
        service = QueryService(backend, max_cached_matches=2)
        calls = []
        original = backend.search

        def counting_search(query, limit=None, min_freq=None):
            calls.append(query)
            return original(query, limit=limit)

        backend.search = counting_search
        try:
            full = service.query("? ?", limit=None)  # cold miss, overflow
            assert full["count"] == 4 and len(full["matches"]) == 4
            assert len(calls) == 1  # the miss's search served the overflow
        finally:
            backend.search = original

    def test_overflow_requests_are_not_counted_as_hits(self, backend):
        service = QueryService(backend, max_cached_matches=2)
        service.query("? ?", limit=1)          # miss, caches 2-prefix
        service.query("? ?", limit=None)       # recomputes → not a hit
        assert service.stats()["cache_hits"] == 0
        service.query("? ?", limit=2)          # served from prefix → hit
        assert service.stats()["cache_hits"] == 1

    def test_clear_cache(self, backend):
        service = QueryService(backend)
        service.query("a ?")
        service.clear_cache()
        assert service.stats()["cache_entries"] == 0

    def test_count_reuses_query_search(self, backend):
        service = QueryService(backend)
        service.query("a ?", limit=None)
        service.count("a ?")
        assert service.stats()["cache_hits"] == 1
        assert service.stats()["cache_entries"] == 1


class TestNormalizedCacheKeys:
    """The cache is keyed on the parsed token tuple, so syntactic
    variants of one query share a single entry."""

    def test_whitespace_variants_share_an_entry(self, backend):
        service = QueryService(backend)
        first = service.query("a ?")
        assert service.query("  a   ? ")["matches"] == first["matches"]
        assert service.stats()["cache_hits"] == 1
        assert service.stats()["cache_entries"] == 1

    def test_disjunction_order_variants_share_an_entry(self, backend):
        service = QueryService(backend)
        first = service.query("(a|^B) ?")
        assert service.query("(^B|a) ?")["matches"] == first["matches"]
        assert service.stats()["cache_hits"] == 1

    def test_string_and_token_queries_share_an_entry(self, backend):
        from repro.query import Q

        service = QueryService(backend)
        service.query("a ?@2")
        service.query((Q.item("a"), Q.floor(Q.any(), 2)))
        assert service.stats()["cache_hits"] == 1

    def test_distinct_floors_do_not_collide(self, backend):
        service = QueryService(backend)
        low = service.query("?@1")
        high = service.query("?@100")
        assert service.stats()["cache_hits"] == 0
        assert low["count"] >= high["count"]

    def test_parse_errors_count_as_served_errors(self, backend):
        service = QueryService(backend)
        for bad in ["", "   ", "(a|", "a@1@2"]:
            with pytest.raises(InvalidParameterError):
                service.query(bad)
        stats = service.stats()
        assert stats["queries"] == 4
        assert stats["errors"] == 4
        assert stats["cache_entries"] == 0


class TestStats:
    def test_fields(self, backend):
        service = QueryService(backend, cache_size=4)
        service.query("a ?")
        stats = service.stats()
        assert stats["patterns"] == 5
        assert stats["queries"] == 1
        assert stats["cache_size"] == 4
        assert stats["total_latency_ms"] >= 0
        assert stats["avg_latency_ms"] >= 0
        assert stats["errors"] == 0

    def test_cache_hits_skip_latency(self, backend):
        service = QueryService(backend)
        service.query("a ?")
        latency = service.stats()["total_latency_ms"]
        service.query("a ?")  # cache hit: no extra search latency
        assert service.stats()["total_latency_ms"] == latency


class TestQueryCanonicalization:
    def test_floor_zero_variants_share_one_cache_entry(self, backend):
        """`a@0 *` normalizes to `a *` (ROADMAP query follow-up), so the
        second spelling is a cache hit, not a second search."""
        service = QueryService(backend)
        first = service.query("a *")
        second = service.query("a@0 *")
        assert second["matches"] == first["matches"]
        assert second["count"] == first["count"]
        stats = service.stats()
        assert stats["queries"] == 2
        assert stats["cache_hits"] == 1
        assert stats["cache_entries"] == 1


class TestLatencyHistograms:
    def test_observe_and_snapshot(self, backend):
        from repro.serve.service import LATENCY_BUCKETS

        service = QueryService(backend)
        service.observe_latency("query", 0.0001)
        service.observe_latency("query", 0.03)
        service.observe_latency("query", 99.0)  # beyond the last bucket
        service.observe_latency("count", 0.002)
        stats = service.stats()
        hists = stats["request_latency"]
        assert set(hists) == {"query", "count"}
        query_hist = hists["query"]
        assert query_hist["count"] == 3
        assert query_hist["sum_seconds"] == pytest.approx(99.0301, abs=1e-3)
        bounds = [bound for bound, _ in query_hist["buckets"]]
        assert bounds == list(LATENCY_BUCKETS)
        # cumulative: the sub-ms observation is in every bucket, the
        # 30ms one from 0.05 up, the 99s one only in +Inf (= count)
        by_bound = dict(
            (bound, cum) for bound, cum in query_hist["buckets"]
        )
        assert by_bound[0.001] == 1
        assert by_bound[0.025] == 1
        assert by_bound[0.05] == 2
        assert by_bound[2.5] == 2

    def test_no_histograms_before_first_observation(self, backend):
        assert "request_latency" not in QueryService(backend).stats()


class TestBackendSwap:
    def test_swap_clears_cache_and_returns_old(self, backend):
        service = QueryService(backend)
        service.query("a ?")
        assert service.stats()["cache_entries"] == 1
        old = service.swap_backend(backend)
        assert old is backend
        assert service.stats()["cache_entries"] == 0

    def test_note_compaction_lands_in_stats(self, backend):
        service = QueryService(backend)
        assert "compaction" not in service.stats()
        service.note_compaction({"compactions": 2, "generation": 2})
        assert service.stats()["compaction"] == {
            "compactions": 2,
            "generation": 2,
        }


class TestPerQuerySigma:
    """The per-query σ override: server-side frequency-floor filtering,
    keyed into the result cache."""

    def test_min_freq_filters_and_is_echoed(self, backend):
        service = QueryService(backend)
        result = service.query("a ?", min_freq=6)
        assert result["matches"] == [{"pattern": "a B", "frequency": 9}]
        assert result["count"] == 1
        assert result["total_frequency"] == 9
        assert result["min_freq"] == 6

    def test_min_freq_absent_from_unfloored_responses(self, backend):
        service = QueryService(backend)
        assert "min_freq" not in service.query("a ?")
        assert "min_freq" not in service.query("a ?", min_freq=0)

    def test_count_respects_min_freq(self, backend):
        service = QueryService(backend)
        assert service.count("a ?", min_freq=6)["count"] == 1
        assert service.count("a ?")["count"] == 2

    def test_distinct_min_freqs_do_not_collide(self, backend):
        service = QueryService(backend)
        assert service.query("a ?", min_freq=6)["count"] == 1
        assert service.query("a ?", min_freq=1)["count"] == 2
        assert service.stats()["cache_hits"] == 0
        assert service.stats()["cache_entries"] == 2

    def test_min_freq_zero_shares_the_unfloored_entry(self, backend):
        service = QueryService(backend)
        service.query("a ?")
        assert service.query("a ?", min_freq=0)["count"] == 2
        assert service.stats()["cache_hits"] == 1
        assert service.stats()["cache_entries"] == 1

    def test_batch_applies_min_freq_to_every_query(self, backend):
        service = QueryService(backend)
        results = service.batch(["a ?", "?"], min_freq=6)
        assert all(
            m["frequency"] >= 6 for r in results for m in r["matches"]
        )
        assert all(r["min_freq"] == 6 for r in results)

    @pytest.mark.parametrize("bad", [-1, 1.5, True, "3"])
    def test_invalid_min_freq_rejected_and_counted(self, backend, bad):
        service = QueryService(backend)
        with pytest.raises(InvalidParameterError):
            service.query("a ?", min_freq=bad)
        assert service.stats()["errors"] == 1

    def test_min_freq_beyond_cached_prefix_recomputes_with_floor(
        self, backend
    ):
        """The capped-entry re-search path must carry the σ override."""
        service = QueryService(backend, max_cached_matches=1)
        assert service.query("a ?", limit=1, min_freq=1)["count"] == 2
        overflow = service.query("a ?", limit=5, min_freq=1)
        assert [m["frequency"] for m in overflow["matches"]] == [9, 5]


class TestNegationOnlyRejection:
    """All-negative queries would scan the store unpruned — the serving
    tier refuses them, like any other invalid request."""

    @pytest.mark.parametrize("query", ["!a", "!a ?", "!a * !^B"])
    def test_rejected_with_clear_error(self, backend, query):
        service = QueryService(backend)
        with pytest.raises(InvalidParameterError, match="all-negative"):
            service.query(query)
        assert service.stats()["errors"] == 1

    def test_negation_with_positive_token_is_served(self, backend):
        service = QueryService(backend)
        result = service.query("a !c")
        assert result["count"] == 2  # a B, a b1

    def test_batch_isolates_all_negative_queries(self, backend):
        service = QueryService(backend)
        results = service.batch(["a !c", "!a"])
        assert results[0]["count"] == 2
        assert "all-negative" in results[1]["error"]

    def test_rejection_happens_before_caching(self, backend):
        service = QueryService(backend)
        for _ in range(2):
            with pytest.raises(InvalidParameterError):
                service.query("!a")
        assert service.stats()["cache_entries"] == 0
        assert service.stats()["errors"] == 2
