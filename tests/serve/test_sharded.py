"""Sharded stores and incremental merges.

The two tentpole invariants:

* a sharded store (any shard count) answers every query rank-identically
  to the single-file store and the in-memory index, and
* ``merge_stores`` over the stores of separate mining runs produces
  byte-for-byte the store a full rebuild over the combined runs would.
"""

import random

import pytest

from repro.core import Lash, MiningParams
from repro.errors import EncodingError
from repro.hierarchy import Hierarchy
from repro.query import PatternIndex, code_patterns, merge_pattern_sets
from repro.sequence import SequenceDatabase
from repro.serve import (
    PatternStore,
    ShardedPatternStore,
    merge_stores,
    open_store,
    write_sharded_store,
    write_store,
)
from repro.serve.format import (
    MANIFEST_NAME,
    read_manifest,
    shard_filename,
    shard_of,
)

from tests.serve.test_store import _random_queries, _random_setup


@pytest.fixture
def fig1_result(fig1_database, fig1_hierarchy):
    return Lash(MiningParams(sigma=2, gamma=1, lam=3)).mine(
        fig1_database, fig1_hierarchy
    )


FIG1_QUERIES = [
    "a ?", "^B ?", "? ? ?", "*", "+", "a * c", "^D", "a", "? a",
    "^B + *", "a + a",
]


class TestShardedEquivalence:
    @pytest.mark.parametrize("shards", [1, 2, 3, 7])
    def test_fig1_queries(self, fig1_result, tmp_path, shards):
        index = PatternIndex.from_result(fig1_result)
        path = tmp_path / "fig1.shards"
        fig1_result.to_store(path, shards=shards)
        with ShardedPatternStore.open(path) as sharded:
            assert len(sharded) == len(index)
            assert list(sharded) == list(index)
            assert sharded.top(5) == index.top(5)
            for query in FIG1_QUERIES:
                assert sharded.search(query) == index.search(query), query
                assert sharded.search(query, limit=2) == index.search(
                    query, limit=2
                ), query
                assert sharded.count(query) == index.count(query)
                assert sharded.total_frequency(
                    query
                ) == index.total_frequency(query)

    def test_exact_and_hierarchy_paths(self, fig1_result, tmp_path):
        index = PatternIndex.from_result(fig1_result)
        path = tmp_path / "fig1.shards"
        fig1_result.to_store(path, shards=3)
        with ShardedPatternStore.open(path) as sharded:
            for names in [("a", "B"), ("a",), ("a", "B", "c"), ("e", "f")]:
                assert sharded.frequency(*names) == index.frequency(*names)
            assert ("a", "B") in sharded
            assert ("zzz",) not in sharded
            assert sharded.generalizations_of(
                ("a", "b1")
            ) == index.generalizations_of(("a", "b1"))
            assert sharded.specializations_of(
                ("a", "B")
            ) == index.specializations_of(("a", "B"))
            assert sharded.slot_fillers("a ?", 1) == index.slot_fillers(
                "a ?", 1
            )

    @pytest.mark.parametrize("seed", range(6))
    def test_randomized_three_backends_agree(self, tmp_path, seed):
        """Index, single store and sharded store answer identically on
        randomized pattern sets and queries."""
        rng = random.Random(seed)
        hierarchy, patterns, items = _random_setup(rng)
        coded, vocabulary = code_patterns(patterns, hierarchy)
        index = PatternIndex(coded, vocabulary)
        single_path = tmp_path / "single.store"
        write_store(single_path, coded, vocabulary)
        sharded_path = tmp_path / "sharded.store"
        write_sharded_store(
            sharded_path, coded, vocabulary, shards=rng.randint(1, 5)
        )
        with PatternStore.open(single_path) as single, (
            ShardedPatternStore.open(sharded_path)
        ) as sharded:
            assert list(sharded) == list(index) == list(single)
            for query in _random_queries(rng, items):
                expected = index.search(query)
                assert single.search(query) == expected, query
                assert sharded.search(query) == expected, query
            for pattern in list(patterns)[:10]:
                assert sharded.frequency(*pattern) == index.frequency(
                    *pattern
                )
            for pattern in list(patterns)[:5]:
                assert sharded.generalizations_of(
                    pattern
                ) == index.generalizations_of(pattern)
                assert sharded.specializations_of(
                    pattern
                ) == index.specializations_of(pattern)

    def test_routing_matches_writer(self, fig1_result, tmp_path):
        """Every pattern lives in the shard the hash names — the exact
        lookup's single-shard routing is sound."""
        path = tmp_path / "routed.shards"
        fig1_result.to_store(path, shards=4)
        with ShardedPatternStore.open(path) as sharded:
            vocabulary = sharded.vocabulary
            for i in range(sharded.num_shards):
                with PatternStore.open(
                    path / shard_filename(i, 4)
                ) as shard:
                    for match in shard:
                        assert shard_of(match.pattern[0], 4) == i


class TestShardedLifecycle:
    def test_open_store_dispatches(self, fig1_result, tmp_path):
        single = tmp_path / "s.store"
        sharded = tmp_path / "s.shards"
        fig1_result.to_store(single)
        fig1_result.to_store(sharded, shards=2)
        with open_store(single) as store:
            assert isinstance(store, PatternStore)
        with open_store(sharded) as store:
            assert isinstance(store, ShardedPatternStore)

    def test_open_reads_manifest_only(self, fig1_result, tmp_path):
        """Opening the shard set touches no shard file; the first query
        opens only what it needs."""
        path = tmp_path / "lazy.shards"
        fig1_result.to_store(path, shards=3)
        sharded = ShardedPatternStore.open(path)
        try:
            assert sharded._stores == [None, None, None]
            assert len(sharded) == len(fig1_result)  # manifest-only
            assert sharded._stores == [None, None, None]
            sharded.frequency("a", "B")  # routed: shard 0 (vocab) + owner
            assert sum(s is not None for s in sharded._stores) <= 2
        finally:
            sharded.close()

    def test_describe_aggregates_shards(self, fig1_result, tmp_path):
        path = tmp_path / "desc.shards"
        fig1_result.to_store(path, shards=3)
        with ShardedPatternStore.open(path) as sharded:
            info = sharded.describe()
            assert info["shards"] == 3
            assert info["patterns"] == len(fig1_result)
            assert len(info["shard_stats"]) == 3
            assert sum(s["patterns"] for s in info["shard_stats"]) == len(
                fig1_result
            )

    def test_missing_manifest_rejected(self, tmp_path):
        empty = tmp_path / "not-a-store"
        empty.mkdir()
        with pytest.raises(EncodingError, match="manifest"):
            ShardedPatternStore.open(empty)

    def test_corrupt_manifest_rejected(self, fig1_result, tmp_path):
        path = tmp_path / "broken.shards"
        fig1_result.to_store(path, shards=2)
        (path / MANIFEST_NAME).write_text('{"format": "something-else"}')
        with pytest.raises(EncodingError, match="format"):
            ShardedPatternStore.open(path)

    def test_shards_must_be_positive(self, fig1_result, tmp_path):
        with pytest.raises(EncodingError, match="shard count"):
            fig1_result.to_store(tmp_path / "zero.shards", shards=0)

    def test_rebuild_over_existing_shard_set(self, fig1_result, tmp_path):
        """Rebuilding with a different shard count replaces the set
        wholesale — no stale shard files survive the swap."""
        path = tmp_path / "rebuilt.shards"
        fig1_result.to_store(path, shards=4)
        fig1_result.to_store(path, shards=2)
        manifest = read_manifest(path)
        assert manifest["shards"] == 2
        assert sorted(p.name for p in path.iterdir()) == sorted(
            [MANIFEST_NAME, shard_filename(0, 2), shard_filename(1, 2)]
        )
        with ShardedPatternStore.open(path) as sharded:
            assert len(sharded) == len(fig1_result)

    def test_refuses_to_overwrite_foreign_directory(
        self, fig1_result, tmp_path
    ):
        """A destination directory holding anything that is not a shard
        build is refused, not deleted."""
        victim = tmp_path / "precious"
        victim.mkdir()
        (victim / "thesis.tex").write_text("years of work")
        with pytest.raises(EncodingError, match="refusing to overwrite"):
            fig1_result.to_store(victim, shards=2)
        assert (victim / "thesis.tex").read_text() == "years of work"
        with pytest.raises(EncodingError, match="refusing to overwrite"):
            single = tmp_path / "src.store"
            fig1_result.to_store(single)
            merge_stores([single], victim, shards=2)
        assert (victim / "thesis.tex").exists()

    def test_merge_into_one_of_its_sources(self, fig1_hierarchy, tmp_path):
        """`merge --out` may name an input shard set: sources are fully
        decoded before the atomic swap."""
        run_a = _mine(CORPUS_A, fig1_hierarchy)
        run_b = _mine(CORPUS_B, fig1_hierarchy)
        a_path = tmp_path / "serving.shards"
        run_a.to_store(a_path, shards=2)
        b_path = tmp_path / "delta.store"
        run_b.to_store(b_path)
        merge_stores([a_path, b_path], a_path, shards=2)
        rebuilt = _mine(CORPUS_A + CORPUS_B, fig1_hierarchy)
        with ShardedPatternStore.open(a_path) as merged:
            assert {
                m.pattern: m.frequency for m in merged
            } == rebuilt.decoded()

    def test_manifest_round_trip(self, fig1_result, tmp_path):
        path = tmp_path / "manifest.shards"
        fig1_result.to_store(path, shards=2)
        manifest = read_manifest(path)
        assert manifest["shards"] == 2
        assert manifest["patterns"] == len(fig1_result)
        assert manifest["shard_files"] == [
            shard_filename(0, 2), shard_filename(1, 2)
        ]


def _mine(sequences, hierarchy):
    """Mine with σ=1 so every pattern of a part stays visible in the
    union — the regime where merging mined results is exact."""
    return Lash(MiningParams(sigma=1, gamma=1, lam=3)).mine(
        SequenceDatabase(sequences), hierarchy
    )


CORPUS_A = [
    ["a", "b1", "a", "b1"],
    ["a", "b3", "c", "c", "b2"],
    ["a", "c"],
]
CORPUS_B = [
    ["b11", "a", "e", "a"],
    ["a", "b12", "d1", "c"],
    ["b13", "f", "d2"],
    ["a", "c"],
]


class TestMerge:
    def test_merge_equals_full_rebuild(self, fig1_hierarchy, tmp_path):
        """The acceptance invariant: merging the stores of two mining
        runs is byte-identical to the store of mining the union."""
        run_a = _mine(CORPUS_A, fig1_hierarchy)
        run_b = _mine(CORPUS_B, fig1_hierarchy)
        rebuilt = _mine(CORPUS_A + CORPUS_B, fig1_hierarchy)

        a_path, b_path = tmp_path / "a.store", tmp_path / "b.store"
        run_a.to_store(a_path)
        run_b.to_store(b_path)
        merged_path = tmp_path / "merged.store"
        merge_stores([a_path, b_path], merged_path)
        full_path = tmp_path / "full.store"
        rebuilt.to_store(full_path)
        assert merged_path.read_bytes() == full_path.read_bytes()

    def test_sharded_merge_equals_sharded_rebuild(
        self, fig1_hierarchy, tmp_path
    ):
        """Byte-equivalence holds shard file by shard file."""
        run_a = _mine(CORPUS_A, fig1_hierarchy)
        run_b = _mine(CORPUS_B, fig1_hierarchy)
        rebuilt = _mine(CORPUS_A + CORPUS_B, fig1_hierarchy)

        a_path = tmp_path / "a.shards"
        run_a.to_store(a_path, shards=3)
        b_path = tmp_path / "b.store"
        run_b.to_store(b_path)
        merged_path = tmp_path / "merged.shards"
        merge_stores([a_path, b_path], merged_path, shards=3)
        full_path = tmp_path / "full.shards"
        rebuilt.to_store(full_path, shards=3)
        for i in range(3):
            name = shard_filename(i, 3)
            assert (merged_path / name).read_bytes() == (
                full_path / name
            ).read_bytes(), name

    @pytest.mark.parametrize("seed", range(4))
    def test_randomized_merge_matches_rebuild(
        self, fig1_hierarchy, tmp_path, seed
    ):
        """Random corpus splits: merge(part stores) == rebuild(union)."""
        rng = random.Random(seed)
        items = ["a", "b1", "b2", "b3", "c", "e", "f", "d1", "d2"]
        corpus = [
            [rng.choice(items) for _ in range(rng.randint(1, 5))]
            for _ in range(rng.randint(6, 20))
        ]
        cut = rng.randint(1, len(corpus) - 1)
        part_stores = []
        for label, part in (("a", corpus[:cut]), ("b", corpus[cut:])):
            path = tmp_path / f"{label}{seed}.store"
            _mine(part, fig1_hierarchy).to_store(path)
            part_stores.append(path)
        merged = tmp_path / f"merged{seed}.store"
        merge_stores(part_stores, merged)
        full = tmp_path / f"full{seed}.store"
        _mine(corpus, fig1_hierarchy).to_store(full)
        assert merged.read_bytes() == full.read_bytes()

    def test_merge_pattern_sets_sums_overlaps(self):
        h = Hierarchy.from_parent_map({"x1": "X", "X": None, "y": None})
        coded_a, vocab_a = code_patterns({("x1", "y"): 3, ("y",): 1}, h)
        coded_b, vocab_b = code_patterns({("x1", "y"): 2, ("X",): 4}, h)
        decoded_a = {
            vocab_a.decode_sequence(p): f for p, f in coded_a.items()
        }
        decoded_b = {
            vocab_b.decode_sequence(p): f for p, f in coded_b.items()
        }
        coded, vocabulary = merge_pattern_sets(
            [(decoded_a, vocab_a), (decoded_b, vocab_b)]
        )
        merged = {
            vocabulary.decode_sequence(p): f for p, f in coded.items()
        }
        assert merged == {("x1", "y"): 5, ("y",): 1, ("X",): 4}

    def test_merge_needs_sources(self, tmp_path):
        with pytest.raises(EncodingError, match="at least one"):
            merge_stores([], tmp_path / "out.store")

    def test_merged_store_answers_like_union_index(
        self, fig1_hierarchy, tmp_path
    ):
        run_a = _mine(CORPUS_A, fig1_hierarchy)
        run_b = _mine(CORPUS_B, fig1_hierarchy)
        rebuilt = _mine(CORPUS_A + CORPUS_B, fig1_hierarchy)
        a_path, b_path = tmp_path / "a.store", tmp_path / "b.store"
        run_a.to_store(a_path)
        run_b.to_store(b_path)
        merged_path = tmp_path / "m.shards"
        merge_stores([a_path, b_path], merged_path, shards=2)
        index = PatternIndex.from_result(rebuilt)
        with open_store(merged_path) as merged:
            for query in FIG1_QUERIES:
                assert merged.search(query) == index.search(query), query


class TestSharedPositionSpace:
    def test_one_build_covers_every_shard(self, fig1_result, tmp_path):
        """Cold positional queries build ONE position space for the
        whole handle; each shard runs on a rebased slice of it, and
        the slices answer exactly like per-shard builds would."""
        path = tmp_path / "fig1.shards"
        fig1_result.to_store(path, shards=3)
        index = PatternIndex.from_result(fig1_result)
        with ShardedPatternStore.open(path) as sharded:
            # force the bitmap path: "pruned" plans skip the space
            sharded.set_planner("cost", "exact")
            for query in FIG1_QUERIES:
                assert sharded.search(query) == index.search(query), query
            stats = sharded.plan_stats()
            assert stats["space_builds"] == 1
            assert stats["paths"]["exact"] > 0

    def test_slices_are_per_shard_views(self, fig1_result, tmp_path):
        path = tmp_path / "fig1.shards"
        fig1_result.to_store(path, shards=3)
        with ShardedPatternStore.open(path) as sharded:
            sharded.set_planner("cost", "exact")
            sharded.search("a ?")
            slices = sharded._space_slices
            assert slices is not None and len(slices) == 3
            total_fields = sum(
                len(view.offsets) for view in slices.values()
            )
            assert total_fields == len(sharded)
