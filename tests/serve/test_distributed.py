"""The distributed serving tier: protocol, shard servers, router.

The tentpole invariant mirrors the sharded-store one a level up: a
router fanning a query out over shard-server processes and k-way
merging the rank-ordered partial answers is **byte-identical** to a
single-process :class:`ShardedPatternStore` over the same manifest —
including with one replica down per shard, where failover (not the
answer) absorbs the failure.  Degradation is explicit: only when a
shard's whole replica set is gone does the answer shrink, and then it
is flagged partial and kept out of the service cache.
"""

from __future__ import annotations

import random
import threading
import urllib.error
import urllib.request

import pytest

from repro.core import Lash, MiningParams
from repro.errors import (
    InvalidParameterError,
    ReproError,
    UnknownItemError,
)
from repro.hierarchy import Hierarchy
from repro.query import parse_query
from repro.query.tokens import ItemToken, NotToken
from repro.sequence import SequenceDatabase
from repro.serve import QueryService, open_store
from repro.serve.advisor import (
    advise_shards,
    group_weights,
    simulate_placement,
)
from repro.serve.distributed import (
    ShardServer,
    parse_shard_list,
    partial_search,
    partial_top,
)
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    decode_error,
    decode_tokens,
    decode_value,
    encode_error,
    encode_tokens,
    encode_value,
)
from repro.serve.router import (
    ClusterMap,
    RouterBackend,
    ServerSpec,
    ShardClient,
    plan_placement,
)

NUM_SHARDS = 4

QUERIES = [
    "? ?",
    "a ?",
    "^B +",
    "a * c",
    "(a|^B) ?",
    "!a ^B",
    "!a@2 ?",
    "? *{0,2} ?",
    "?@2",
]


@pytest.fixture(scope="module")
def mined():
    hierarchy = Hierarchy()
    for name, parent in [
        ("A", None), ("B", None), ("a", "A"), ("b", "B"),
        ("c", "A"), ("d", "B"), ("e", None),
    ]:
        hierarchy.add_item(name, parent)
    rng = random.Random(20260807)
    leaves = ["a", "b", "c", "d", "e"]
    database = SequenceDatabase(
        [
            [rng.choice(leaves) for _ in range(rng.randint(1, 6))]
            for _ in range(40)
        ]
    )
    return Lash(MiningParams(sigma=2, gamma=1, lam=3)).mine(
        database, hierarchy
    )


@pytest.fixture(scope="module")
def store_path(mined, tmp_path_factory):
    path = tmp_path_factory.mktemp("dist") / "patterns.shards"
    mined.to_store(path, shards=NUM_SHARDS)
    return path


def _cluster_for(servers, num_shards=NUM_SHARDS, full_replica=None):
    """Pinned placement: each (server, shards) pair plus an optional
    trailing full replica, so the replica is always the failover pick."""
    specs, placement = [], {}
    entries = list(servers)
    if full_replica is not None:
        entries.append((full_replica, range(num_shards)))
    for server, shards in entries:
        host, port = server.address
        spec = ServerSpec(
            host,
            port,
            http_port=(
                server.http_address[1] if server.http_address else None
            ),
        )
        specs.append(spec)
        for shard in shards:
            placement.setdefault(shard, []).append(spec.key)
    return ClusterMap(specs, num_shards=num_shards, placement=placement)


def _matches(backend, query, **kwargs):
    return [
        (m.pattern, m.frequency) for m in backend.search(query, **kwargs)
    ]


# ----------------------------------------------------------------------
# wire protocol
# ----------------------------------------------------------------------


class TestProtocolValues:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            1,
            -1,
            127,
            -128,
            1 << 40,
            -(1 << 40),
            "",
            "héllo ∅",
            b"",
            b"\x00\xff raw",
            [],
            [1, "two", None, [True]],
            {},
            {"op": "search", "shards": [0, 2], "limit": None},
            {"nested": {"deep": [{"k": -7}]}},
        ],
    )
    def test_round_trip(self, value):
        encoded = bytes(encode_value(value))
        decoded, consumed = decode_value(encoded)
        assert decoded == value
        assert consumed == len(encoded)

    def test_rejects_unencodable(self):
        with pytest.raises(ReproError):
            encode_value(object())

    def test_truncated_payload_rejected(self):
        encoded = bytes(encode_value({"k": [1, 2, 3]}))
        with pytest.raises(ReproError):
            decode_value(encoded[:-1])


class TestProtocolTokens:
    @pytest.mark.parametrize(
        "query",
        [
            "a",
            "^B",
            "?",
            "+",
            "*",
            "*{1,3}",
            "*{2,}",
            "!a",
            "!^B",
            "(a|^B|c)",
            "a@3",
            "!a@2",
            "(a|b)@4",
            "a ^B ? + * !c *{0,1} (a|b)@2",
        ],
    )
    def test_round_trip(self, query):
        tokens = parse_query(query)
        assert decode_tokens(encode_tokens(tokens)) == tokens

    def test_malformed_rejected(self):
        for bad in [None, "a", ["item"], [["nope", "a"]], [["item"]]]:
            with pytest.raises(ReproError):
                decode_tokens(bad)


class TestProtocolErrors:
    def test_typed_round_trip(self):
        for exc in [
            InvalidParameterError("bad limit"),
            UnknownItemError("zzz"),
        ]:
            back = decode_error(encode_error(exc))
            assert type(back) is type(exc)
            assert str(back) == str(exc)
        assert decode_error(encode_error(UnknownItemError("zzz"))).item == (
            "zzz"
        )

    def test_unknown_type_degrades_to_repro_error(self):
        back = decode_error({"type": "NoSuchError", "message": "boom"})
        assert type(back) is ReproError


# ----------------------------------------------------------------------
# partial (shard-slice) reads
# ----------------------------------------------------------------------


class TestPartialReads:
    def test_slices_merge_to_whole(self, store_path):
        with open_store(store_path) as store:
            for query in QUERIES:
                tokens = parse_query(query)
                whole = partial_search(store, tokens)
                assert whole == [
                    (store.vocabulary.encode_sequence(m.pattern), m.frequency)
                    for m in store.search(tokens)
                ], query
                import heapq

                from repro.query.base import rank_key

                halves = [
                    partial_search(store, tokens, shard_ids=[0, 1]),
                    partial_search(store, tokens, shard_ids=[2, 3]),
                ]
                remerged = list(
                    heapq.merge(*halves, key=rank_key)
                )
                assert remerged == whole, query

    def test_sigma_and_limit_push_down(self, store_path):
        with open_store(store_path) as store:
            tokens = parse_query("? ?")
            whole = partial_search(store, tokens)
            floored = partial_search(store, tokens, min_freq=3)
            assert floored == [r for r in whole if r[1] >= 3]
            assert partial_search(store, tokens, limit=4) == whole[:4]

    def test_top_slices(self, store_path):
        with open_store(store_path) as store:
            full = partial_top(store, 10)
            assert full == [
                (store.vocabulary.encode_sequence(m.pattern), m.frequency)
                for m in store.top(10)
            ]
            assert len(partial_top(store, 3, shard_ids=[1])) <= 3

    def test_parse_shard_list(self):
        assert parse_shard_list("0,2,5") == (0, 2, 5)
        assert parse_shard_list("3") == (3,)
        for bad in ["", ",", "a,b", "1;2"]:
            with pytest.raises(InvalidParameterError):
                parse_shard_list(bad)


# ----------------------------------------------------------------------
# one shard server over the socket protocol
# ----------------------------------------------------------------------


class TestShardServer:
    def test_ops_and_errors(self, store_path):
        with ShardServer(store_path, http_port=None) as server, open_store(
            store_path
        ) as store:
            host, port = server.address
            client = ShardClient(host, port)
            try:
                pong = client.request(
                    {"v": PROTOCOL_VERSION, "op": "ping"}, 5.0
                )
                assert pong == {"ok": True, "patterns": len(store)}

                status = client.request(
                    {"v": PROTOCOL_VERSION, "op": "status"}, 5.0
                )
                assert status["num_shards"] == NUM_SHARDS
                assert status["owned"] == list(range(NUM_SHARDS))
                assert sum(
                    status["patterns_by_shard"].values()
                ) == len(store)

                described = client.request(
                    {"v": PROTOCOL_VERSION, "op": "describe"}, 5.0
                )["describe"]
                assert described["patterns"] == len(store)

                records = client.request(
                    {
                        "v": PROTOCOL_VERSION,
                        "op": "search",
                        "tokens": encode_tokens(parse_query("? ?")),
                        "shards": [0, 2],
                        "limit": None,
                        "min_freq": None,
                    },
                    5.0,
                )["records"]
                expected = partial_search(
                    store, parse_query("? ?"), shard_ids=[0, 2]
                )
                assert [
                    (tuple(coded), freq) for coded, freq, _ in records
                ] == expected
                # wire records carry names so the router stays data-free
                assert all(
                    tuple(names)
                    == store.vocabulary.decode_sequence(tuple(coded))
                    for coded, _freq, names in records
                )

                # errors cross the wire with their original type
                with pytest.raises(UnknownItemError):
                    client.request(
                        {
                            "v": PROTOCOL_VERSION,
                            "op": "search",
                            "tokens": encode_tokens([ItemToken("zzz")]),
                        },
                        5.0,
                    )
                with pytest.raises(InvalidParameterError):
                    client.request(
                        {"v": PROTOCOL_VERSION, "op": "nope"}, 5.0
                    )
                with pytest.raises(InvalidParameterError):
                    client.request({"v": 999, "op": "ping"}, 5.0)
                with pytest.raises(InvalidParameterError):
                    # negation-only guard repeats server-side
                    client.request(
                        {
                            "v": PROTOCOL_VERSION,
                            "op": "search",
                            "tokens": encode_tokens(
                                [NotToken(ItemToken("a"))]
                            ),
                        },
                        5.0,
                    )
                # the connection survives all those error responses
                assert client.request(
                    {"v": PROTOCOL_VERSION, "op": "ping"}, 5.0
                )["ok"]
            finally:
                client.close()

    def test_subset_server_owns_its_slice_only(self, store_path):
        with ShardServer(
            store_path, shard_subset=[1, 3], http_port=None
        ) as server:
            host, port = server.address
            client = ShardClient(host, port)
            try:
                status = client.request(
                    {"v": PROTOCOL_VERSION, "op": "status"}, 5.0
                )
                assert status["owned"] == [1, 3]
                with pytest.raises(InvalidParameterError):
                    client.request(
                        {
                            "v": PROTOCOL_VERSION,
                            "op": "top",
                            "n": 5,
                            "shards": [0],
                        },
                        5.0,
                    )
            finally:
                client.close()


# ----------------------------------------------------------------------
# placement
# ----------------------------------------------------------------------


class TestPlacement:
    def test_consistent_hash_properties(self):
        keys = [f"h{i}:70{i}" for i in range(4)]
        placement = plan_placement(keys, 16, replication=2)
        assert set(placement) == set(range(16))
        for replicas in placement.values():
            assert len(replicas) == 2
            assert len(set(replicas)) == 2
        # determinism, and stability: dropping one server only moves
        # shards that lived on it
        assert placement == plan_placement(keys, 16, replication=2)
        smaller = plan_placement(keys[:-1], 16, replication=2)
        for shard in range(16):
            kept = [k for k in placement[shard] if k != keys[-1]]
            assert smaller[shard][: len(kept)] == kept or set(
                kept
            ) <= set(smaller[shard])

    def test_cluster_map_validation(self):
        spec = ServerSpec("127.0.0.1", 7601)
        with pytest.raises(InvalidParameterError):
            ClusterMap([], num_shards=2)
        with pytest.raises(InvalidParameterError):
            ClusterMap([spec, spec], num_shards=2)
        with pytest.raises(InvalidParameterError):
            ClusterMap([spec], num_shards=2, placement={0: ["x:1"]})
        with pytest.raises(InvalidParameterError):
            ClusterMap([spec], num_shards=2, placement={0: [spec.key]})
        with pytest.raises(InvalidParameterError):
            ClusterMap.from_config(
                {
                    "num_shards": 2,
                    "servers": [
                        {"host": "a", "port": 1, "shards": [0, 1]},
                        {"host": "b", "port": 2},
                    ],
                }
            )

    def test_from_config_pinned(self):
        cluster = ClusterMap.from_config(
            {
                "num_shards": 2,
                "servers": [
                    {"host": "a", "port": 1, "shards": [0]},
                    {"host": "b", "port": 2, "shards": [1, 0]},
                ],
            }
        )
        assert cluster.replicas(0) == ("a:1", "b:2")
        assert cluster.replicas(1) == ("b:2",)


# ----------------------------------------------------------------------
# router: byte-identity and failover
# ----------------------------------------------------------------------


class TestRouterByteIdentity:
    def test_matches_single_process_store(self, store_path):
        with ShardServer(
            store_path, shard_subset=[0, 1], http_port=None
        ) as s1, ShardServer(
            store_path, shard_subset=[2, 3], http_port=None
        ) as s2, open_store(store_path) as mono:
            cluster = _cluster_for([(s1, [0, 1]), (s2, [2, 3])])
            router = RouterBackend(cluster)
            try:
                assert len(router) == len(mono)
                for query in QUERIES:
                    tokens = parse_query(query)
                    assert _matches(router, tokens) == _matches(
                        mono, tokens
                    ), query
                    assert _matches(router, tokens, limit=3) == _matches(
                        mono, tokens, limit=3
                    ), query
                    assert _matches(
                        router, tokens, min_freq=3
                    ) == _matches(mono, tokens, min_freq=3), query
                    assert router.take_partial() is None
                for n in (1, 5, 100):
                    assert [
                        (m.pattern, m.frequency) for m in router.top(n)
                    ] == [(m.pattern, m.frequency) for m in mono.top(n)]
                with pytest.raises(UnknownItemError):
                    router.search((ItemToken("zzz"),))
            finally:
                router.close()

    def test_identical_with_one_replica_down_per_shard(self, store_path):
        with ShardServer(
            store_path, shard_subset=[0, 1], http_port=None
        ) as s1, ShardServer(
            store_path, http_port=None
        ) as replica, open_store(store_path) as mono:
            cluster = _cluster_for([(s1, [0, 1])], full_replica=replica)
            router = RouterBackend(cluster)
            try:
                # warm up so the dead server's sockets sit in the pool
                assert _matches(router, parse_query("? ?")) == _matches(
                    mono, parse_query("? ?")
                )
                s1.stop()
                for query in QUERIES:
                    tokens = parse_query(query)
                    assert _matches(router, tokens) == _matches(
                        mono, tokens
                    ), query
                    # failover absorbed the failure: no degradation
                    assert router.take_partial() is None, query
                info = router.describe()
                assert info["fanout_retries"] >= 1
                assert info["server_failures"] >= 1
                assert info["partial_results"] == 0
            finally:
                router.close()


class TestRouterFailover:
    def test_kill_mid_stream_fails_over_transparently(self, store_path):
        """Queries keep flowing byte-identically while a shard server
        is killed under them — the replica absorbs every request that
        the dying server drops."""
        with ShardServer(
            store_path, shard_subset=[0, 1], http_port=None
        ) as s1, ShardServer(
            store_path, shard_subset=[2, 3], http_port=None
        ) as s2, ShardServer(
            store_path, http_port=None
        ) as replica, open_store(store_path) as mono:
            cluster = _cluster_for(
                [(s1, [0, 1]), (s2, [2, 3])], full_replica=replica
            )
            router = RouterBackend(cluster)
            expected = {
                query: _matches(mono, parse_query(query))
                for query in QUERIES
            }
            killer = threading.Timer(0.05, s1.stop)
            try:
                killer.start()
                for round_ in range(12):
                    for query in QUERIES:
                        got = _matches(router, parse_query(query))
                        assert got == expected[query], (
                            f"round {round_} query {query!r}"
                        )
                        assert router.take_partial() is None
                info = router.describe()
                assert info["server_failures"] >= 1
                assert info["partial_results"] == 0
            finally:
                killer.cancel()
                router.close()

    def test_exhausted_replicas_degrade_to_flagged_partial(
        self, store_path
    ):
        with ShardServer(
            store_path, shard_subset=[0, 1], http_port=None
        ) as s1, ShardServer(
            store_path, shard_subset=[2, 3], http_port=None
        ) as s2, open_store(store_path) as mono:
            cluster = _cluster_for([(s1, [0, 1]), (s2, [2, 3])])
            router = RouterBackend(cluster)
            try:
                tokens = parse_query("? ?")
                s1.stop()
                got = _matches(router, tokens)
                partial = router.take_partial()
                assert partial is not None
                assert partial["missing_shards"] == [0, 1]
                assert partial["failed_servers"]
                # the degraded answer is exactly the reachable slice
                reachable = [
                    (
                        mono.vocabulary.decode_sequence(coded),
                        freq,
                    )
                    for coded, freq in partial_search(
                        mono, tokens, shard_ids=[2, 3]
                    )
                ]
                assert got == reachable
                assert router.describe()["partial_results"] >= 1
                # take_partial clears per read
                assert router.take_partial() is None
            finally:
                router.close()

    def test_healthz_probe_drives_exclusion(self, store_path):
        """check_health marks a dead server down via its HTTP sidecar,
        after which fan-outs skip it (first-wave picks go straight to
        the replica — the retry counter stays put)."""
        with ShardServer(
            store_path, shard_subset=[0, 1]
        ) as s1, ShardServer(store_path, http_port=None) as replica:
            cluster = _cluster_for([(s1, [0, 1])], full_replica=replica)
            router = RouterBackend(cluster)
            try:
                key = f"{s1.address[0]}:{s1.address[1]}"
                assert router.check_health() == {
                    key: True,
                    f"{replica.address[0]}:{replica.address[1]}": True,
                }
                s1.stop()
                health = router.check_health()
                assert health[key] is False
                assert router.healthy_servers()[key] is False

                retries_before = router.describe()["fanout_retries"]
                assert router.search(parse_query("? ?"))
                assert router.take_partial() is None
                assert (
                    router.describe()["fanout_retries"] == retries_before
                )
            finally:
                router.close()


# ----------------------------------------------------------------------
# the service layer and HTTP over a router
# ----------------------------------------------------------------------


class TestServiceOverRouter:
    def test_partial_answers_flagged_and_never_cached(self, store_path):
        with ShardServer(
            store_path, shard_subset=[0, 1], http_port=None
        ) as s1, ShardServer(
            store_path, shard_subset=[2, 3], http_port=None
        ) as s2:
            cluster = _cluster_for([(s1, [0, 1]), (s2, [2, 3])])
            router = RouterBackend(cluster)
            service = QueryService(router)
            try:
                full = service.query("? ?")
                assert "partial" not in full
                # healthy answers cache normally
                assert service.query("? ?") == full
                assert service.stats()["cache_hits"] == 1

                s1.stop()
                degraded = service.query("a ?")
                assert degraded["partial"]["missing_shards"] == [0, 1]
                hits = service.stats()["cache_hits"]
                again = service.query("a ?")
                assert again["partial"]["missing_shards"] == [0, 1]
                assert service.stats()["cache_hits"] == hits, (
                    "a degraded answer must not be served from cache"
                )
                assert service.count("a ?")["partial"]
                assert service.topk(5)["partial"]
            finally:
                router.close()

    def test_http_metrics_and_degraded_query(self, store_path):
        from repro.serve.http import create_server

        with ShardServer(
            store_path, shard_subset=[0, 1], http_port=None
        ) as s1, ShardServer(
            store_path, shard_subset=[2, 3], http_port=None
        ) as s2:
            cluster = _cluster_for([(s1, [0, 1]), (s2, [2, 3])])
            router = RouterBackend(cluster)
            service = QueryService(router)
            http = create_server(service, "127.0.0.1", 0, quiet=True)
            thread = threading.Thread(
                target=http.serve_forever, daemon=True
            )
            thread.start()
            base = f"http://127.0.0.1:{http.server_address[1]}"
            try:
                with urllib.request.urlopen(f"{base}/healthz") as resp:
                    assert resp.status == 200
                s2.stop()
                import json

                with urllib.request.urlopen(
                    f"{base}/query?q=%3F+%3F"
                ) as resp:
                    answer = json.loads(resp.read())
                assert answer["partial"]["missing_shards"] == [2, 3]
                with urllib.request.urlopen(f"{base}/metrics") as resp:
                    metrics = resp.read().decode()
                assert "lash_router_fanouts_total" in metrics
                assert "lash_router_partial_results_total 1" in metrics
                assert 'lash_router_server_healthy{server="' in metrics
                assert (
                    "lash_router_fanout_latency_seconds_bucket" in metrics
                )
                with pytest.raises(urllib.error.HTTPError) as err:
                    urllib.request.urlopen(f"{base}/query?q=zzz")
                assert err.value.code == 400
            finally:
                http.shutdown()
                http.server_close()
                thread.join(timeout=5)
                router.close()


# ----------------------------------------------------------------------
# shard-count advisor
# ----------------------------------------------------------------------


class TestAdvisor:
    def test_weights_cover_the_store(self, mined, tmp_path):
        single = tmp_path / "adv.store"
        mined.to_store(single)
        with open_store(single) as store:
            weights = group_weights(store)
            assert weights
            # every group is a real first item; weights are positive
            assert all(w > 0 for w in weights.values())
            first_items = {
                m.pattern[0] for m in store.top(len(store))
            }
            assert set(weights) == first_items

    def test_sharded_and_single_agree_on_groups(
        self, mined, store_path, tmp_path
    ):
        single = tmp_path / "adv2.store"
        mined.to_store(single)
        with open_store(single) as a, open_store(store_path) as b:
            assert set(group_weights(a)) == set(group_weights(b))

    def test_simulation_conserves_bytes(self, store_path):
        with open_store(store_path) as store:
            weights = group_weights(store)
            for n in (1, 2, 4, 8):
                shards = simulate_placement(weights, n)
                assert len(shards) == n
                assert sum(shards) == sum(weights.values())

    def test_advise_recommends_and_explains(self, store_path):
        with open_store(store_path) as store:
            report = advise_shards(store)
            assert report["recommended_shards"] >= 1
            assert report["reason"]
            assert report["groups"] == len(group_weights(store))
            assert 0 < report["skew"] <= 1
            counts = [c["shards"] for c in report["candidates"]]
            assert counts == sorted(counts)
            # a tiny target is unreachable: the heaviest group alone
            # exceeds it, and the advisor says so instead of upselling
            tight = advise_shards(store, target_bytes=1)
            assert "heaviest routing group" in tight["reason"]
            with pytest.raises(InvalidParameterError):
                advise_shards(store, target_bytes=0)

    def test_rejects_unknown_backend(self):
        with pytest.raises(InvalidParameterError):
            group_weights(object())
