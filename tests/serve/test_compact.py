"""Online compaction: atomic manifest swaps under live readers."""

import threading

import pytest

from repro.core import Lash, MiningParams
from repro.errors import EncodingError
from repro.sequence import SequenceDatabase
from repro.serve import (
    CompactionDaemon,
    QueryService,
    StoreCompactor,
    merge_stores,
    open_store,
)
from repro.serve import compact as compact_module
from repro.serve.format import read_manifest, shard_filename

CORPUS_A = [
    ["a", "b1", "a", "b1"],
    ["a", "b3", "c", "c", "b2"],
    ["a", "c"],
]
CORPUS_B = [
    ["b11", "a", "e", "a"],
    ["a", "b12", "d1", "c"],
    ["b13", "f", "d2"],
    ["a", "c"],
]

QUERIES = ["a ?", "^B ?", "*", "a + a", "^D"]


def _mine(sequences, hierarchy):
    return Lash(MiningParams(sigma=1, gamma=1, lam=3)).mine(
        SequenceDatabase(sequences), hierarchy
    )


@pytest.fixture
def base(fig1_hierarchy, tmp_path):
    path = tmp_path / "base.shards"
    _mine(CORPUS_A, fig1_hierarchy).to_store(path, shards=3)
    return path


@pytest.fixture
def delta(fig1_hierarchy, tmp_path):
    path = tmp_path / "delta.store"
    _mine(CORPUS_B, fig1_hierarchy).to_store(path)
    return path


class TestStoreCompactor:
    def test_compact_equals_offline_merge(
        self, base, delta, fig1_hierarchy, tmp_path
    ):
        """Folding a delta in place produces shard files byte-identical
        to an offline ``merge_stores`` (and therefore to a full rebuild
        over the union, per the merge equivalence suite)."""
        reference = tmp_path / "reference.shards"
        merge_stores([base, delta], reference, shards=3)

        stats = StoreCompactor(base).compact([delta])
        assert stats["generation"] == 1
        assert stats["deltas"] == 1
        for i in range(3):
            compacted = base / shard_filename(i, 3, generation=1)
            assert compacted.read_bytes() == (
                reference / shard_filename(i, 3)
            ).read_bytes()

    def test_generation_bumps_and_old_files_retire_one_swap_late(
        self, base, delta
    ):
        old_files = read_manifest(base)["shard_files"]
        StoreCompactor(base).compact([delta])
        manifest = read_manifest(base)
        assert manifest["generation"] == 1
        assert manifest["shard_files"] == [
            shard_filename(i, 3, generation=1) for i in range(3)
        ]
        # generation 0 survives one swap: readers opened against the old
        # manifest may still lazily open these shards
        assert manifest["previous_files"] == old_files
        for name in old_files:
            assert (base / name).exists()
        # ... and is gone after the next swap
        StoreCompactor(base).compact()
        for name in old_files:
            assert not (base / name).exists()
        assert read_manifest(base)["previous_files"] == [
            shard_filename(i, 3, generation=1) for i in range(3)
        ]

    def test_rebalance_without_deltas(self, base, delta):
        StoreCompactor(base).compact([delta])
        with open_store(base) as before:
            expected = list(before)
        stats = StoreCompactor(base).compact(shards=5)
        assert stats["generation"] == 2
        assert stats["shards"] == 5
        with open_store(base) as store:
            assert store.num_shards == 5
            assert list(store) == expected

    def test_repeated_compactions(self, base, delta, fig1_hierarchy, tmp_path):
        other = tmp_path / "other.store"
        _mine([["e", "f"], ["a", "c"]], fig1_hierarchy).to_store(other)
        StoreCompactor(base).compact([delta])
        StoreCompactor(base).compact([other])
        assert read_manifest(base)["generation"] == 2

        reference = tmp_path / "reference.shards"
        merge_stores([tmp_path / "delta.store", other], reference, shards=3)
        # compare through the backends (filenames differ by generation)
        with open_store(base) as compacted:
            rebuilt = tmp_path / "all.shards"
            merge_stores([base], rebuilt, shards=3)
            for query in QUERIES:
                with open_store(rebuilt) as expected:
                    assert compacted.search(query) == expected.search(query)

    def test_single_file_store_rejected(self, delta):
        with pytest.raises(EncodingError, match="not a sharded store"):
            StoreCompactor(delta)

    def test_crash_before_manifest_swap_leaves_store_intact(
        self, base, delta, monkeypatch
    ):
        """A failure after the new generation's shards are written but
        before the manifest swap must leave the old generation fully
        readable and clean up the orphaned new files."""
        before = read_manifest(base)
        with open_store(base) as store:
            expected = list(store)

        def explode(*args, **kwargs):
            raise RuntimeError("simulated crash before manifest swap")

        monkeypatch.setattr(compact_module, "write_manifest", explode)
        with pytest.raises(RuntimeError, match="simulated crash"):
            StoreCompactor(base).compact([delta])
        monkeypatch.undo()

        assert read_manifest(base) == before
        for i in range(3):
            assert not (base / shard_filename(i, 3, generation=1)).exists()
        with open_store(base) as store:
            assert list(store) == expected

    def test_crash_recovery_next_compaction_succeeds(
        self, base, delta, tmp_path, monkeypatch
    ):
        attempted = {"fail": True}
        real_write_manifest = compact_module.write_manifest

        def flaky(*args, **kwargs):
            if attempted.pop("fail", None):
                raise OSError("disk hiccup")
            return real_write_manifest(*args, **kwargs)

        monkeypatch.setattr(compact_module, "write_manifest", flaky)
        with pytest.raises(OSError):
            StoreCompactor(base).compact([delta])
        StoreCompactor(base).compact([delta])
        assert read_manifest(base)["generation"] == 1

        reference = tmp_path / "reference.shards"
        merge_stores([tmp_path / "delta.store"], reference, shards=3)
        with open_store(base) as compacted:
            assert len(compacted) > 0

    def test_concurrent_reader_never_sees_a_torn_index(self, base, delta):
        """The acceptance criterion: a ShardedPatternStore querying
        throughout repeated compactions keeps answering from its
        generation — every answer matches either the pre- or the
        post-compaction state, never an error or a mix."""
        reader = open_store(base)
        with open_store(base) as snapshot:
            expected = {q: snapshot.search(q) for q in QUERIES}
        errors: list[BaseException] = []
        stop = threading.Event()

        def hammer():
            try:
                while not stop.is_set():
                    for query in QUERIES:
                        # the reader was opened at generation 0 and keeps
                        # its mmaps: answers must stay exactly the old ones
                        assert reader.search(query) == expected[query]
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            StoreCompactor(base).compact([delta])
            StoreCompactor(base).compact(shards=5)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=10)
        reader.close()
        assert not errors
        # a fresh open sees the fully compacted generation
        with open_store(base) as fresh:
            assert fresh.generation == 2
            assert fresh.num_shards == 5
            assert len(fresh) >= len(expected["*"])


class TestCompactionDaemon:
    def _service(self, base):
        store = open_store(base)
        return QueryService(store)

    def test_poll_folds_spooled_delta(self, base, delta, tmp_path):
        service = self._service(base)
        spool = tmp_path / "spool"
        spool.mkdir()
        delta.rename(spool / delta.name)
        daemon = CompactionDaemon(service, base, spool, interval=3600)
        try:
            before = len(service.backend)
            assert daemon.poll_once() is True
            assert service.backend.generation == 1
            assert len(service.backend) > before
            # consumed deltas are archived, not rescanned
            assert daemon.pending_deltas() == []
            assert (spool / "applied" / delta.name).exists()
            assert daemon.poll_once() is False
            stats = service.stats()
            assert stats["compaction"]["compactions"] == 1
            assert stats["compaction"]["generation"] == 1
            assert stats["compaction"]["last"]["deltas"] == 1
        finally:
            daemon.stop()
            service.backend.close()

    def test_poll_reopens_after_external_compaction(
        self, base, delta, tmp_path
    ):
        service = self._service(base)
        spool = tmp_path / "spool"
        daemon = CompactionDaemon(service, base, spool, interval=3600)
        try:
            # an operator runs `lash index compact` out of band
            StoreCompactor(base).compact([delta])
            assert service.backend.generation == 0
            assert daemon.poll_once() is True
            assert service.backend.generation == 1
        finally:
            daemon.stop()
            service.backend.close()

    def test_in_flight_backend_survives_swap(self, base, delta, tmp_path):
        """The retired backend is closed one swap late, so requests that
        grabbed it before a swap keep a live mmap."""
        service = self._service(base)
        old_backend = service.backend
        spool = tmp_path / "spool"
        spool.mkdir()
        delta.rename(spool / "delta.store")
        daemon = CompactionDaemon(service, base, spool, interval=3600)
        try:
            daemon.poll_once()
            # one generation behind: still queryable
            assert old_backend.search("a ?") is not None
        finally:
            daemon.stop()
            service.backend.close()

    def test_daemon_thread_runs(self, base, delta, tmp_path):
        service = self._service(base)
        spool = tmp_path / "spool"
        spool.mkdir()
        delta.rename(spool / "delta.store")
        daemon = CompactionDaemon(service, base, spool, interval=0.05)
        daemon.start()
        try:
            deadline = threading.Event()
            for _ in range(100):
                if service.backend.generation == 1:
                    break
                deadline.wait(0.1)
            assert service.backend.generation == 1
        finally:
            daemon.stop()
            service.backend.close()


class TestReviewRegressions:
    """Regressions for the race/crash findings of the pipeline review."""

    def test_stale_miss_not_cached_across_swap(self, base):
        """A cache miss computed against the pre-swap backend must not
        be inserted after swap_backend cleared the cache."""
        store = open_store(base)
        service = QueryService(store)

        class SwappingBackend:
            """Backend whose search triggers a swap mid-computation —
            the deterministic version of the daemon racing a request."""

            def __init__(self, inner):
                self._inner = inner

            def search(self, query, limit=None, min_freq=None):
                matches = self._inner.search(query, limit=limit)
                service.swap_backend(self._inner)
                return matches

            def __getattr__(self, name):
                return getattr(self._inner, name)

        service.swap_backend(SwappingBackend(store))
        service.query("a ?")
        try:
            assert service.stats()["cache_entries"] == 0
            # the same query afterwards computes (and caches) fresh
            service.query("a ?")
            assert service.stats()["cache_entries"] == 1
        finally:
            store.close()

    def test_idle_reader_survives_many_compactions(self, base, delta):
        """A reader that never reopens (plain `lash serve`) pins every
        shard inode at mount, so compactions that unlink its generation
        — even several of them — cannot break its lazy shard opens."""
        reader = open_store(base)
        try:
            with open_store(base) as snapshot:
                expected = {q: snapshot.search(q) for q in QUERIES}
            StoreCompactor(base).compact([delta])
            StoreCompactor(base).compact(shards=5)
            StoreCompactor(base).compact(shards=2)
            # generation 0 files are long gone from the directory
            assert not list(base.glob("shard-*-of-00003.store"))
            # first-ever reads on the stale handle still work and
            # answer from its own generation
            for query in QUERIES:
                assert reader.search(query) == expected[query]
            # the hash-routed exact-lookup path opens one shard lazily
            assert reader.frequency("a", "c") > 0
        finally:
            reader.close()

    def test_crash_between_compact_and_archive_never_refolds(
        self, base, delta, tmp_path, monkeypatch
    ):
        """If the daemon dies after the manifest swap but before moving
        the delta to applied/, the next scan must archive it, not fold
        it a second time (which would double its frequencies)."""
        service = QueryService(open_store(base))
        spool = tmp_path / "spool"
        spool.mkdir()
        delta.rename(spool / "delta.store")
        daemon = CompactionDaemon(service, base, spool, interval=3600)
        real_archive = CompactionDaemon._archive
        monkeypatch.setattr(
            CompactionDaemon,
            "_archive",
            lambda self, deltas: (_ for _ in ()).throw(
                OSError("simulated crash before archive")
            ),
        )
        try:
            with pytest.raises(OSError, match="before archive"):
                daemon.poll_once()
            # folded, but still sitting in the spool
            assert daemon.pending_deltas() != []
            frequencies = {
                match.pattern: match.frequency
                for match in open_store(base)
            }
            monkeypatch.setattr(CompactionDaemon, "_archive", real_archive)
            daemon.poll_once()
            # archived without a second fold: frequencies unchanged
            assert daemon.pending_deltas() == []
            assert (spool / "applied" / "delta.store").exists()
            with open_store(base) as store:
                after = {m.pattern: m.frequency for m in store}
            assert after == frequencies
            assert read_manifest(base)["generation"] == 1
        finally:
            daemon.stop()
            service.backend.close()

    def test_concurrent_compactions_serialize(self, base, delta, tmp_path):
        """Two compactors racing the same store queue on the advisory
        lock instead of both building the same generation."""
        import threading as _threading

        compactor = StoreCompactor(base)
        started = _threading.Event()
        finished = _threading.Event()

        def background():
            started.set()
            StoreCompactor(base).compact()
            finished.set()

        with compactor._exclusive():
            thread = _threading.Thread(target=background)
            thread.start()
            started.wait(5)
            assert not finished.wait(0.3), "compact ran despite held lock"
        thread.join(timeout=10)
        assert finished.is_set()
        # both compactions landed, one after the other
        compactor.compact([delta])
        assert read_manifest(base)["generation"] == 2


class TestSecondReviewRegressions:
    def test_folded_log_always_covers_current_batch(
        self, base, fig1_hierarchy, tmp_path, monkeypatch
    ):
        """Truncating the folded log below the just-folded batch would
        let a crash-before-archive re-fold the dropped deltas."""
        monkeypatch.setattr(compact_module, "FOLDED_LOG_LIMIT", 2)
        deltas = []
        for i in range(5):
            path = tmp_path / f"batch{i}.store"
            _mine([["a", "c"], ["e", "f"]], fig1_hierarchy).to_store(path)
            deltas.append(path)
        StoreCompactor(base).compact(deltas)
        log = read_manifest(base)["folded_log"]
        assert {entry["name"] for entry in log} == {
            f"batch{i}.store" for i in range(5)
        }

    def test_corrupt_shard_raises_store_error_on_every_query(self, base):
        """A failed lazy shard open must not poison the pinned handle:
        every retry reports the real StoreCorruptError (HTTP 503), never
        ValueError on a closed file (HTTP 500)."""
        from repro.errors import StoreCorruptError

        victim = next(base.glob("shard-*.store"))
        blob = bytearray(victim.read_bytes())
        blob[-10] ^= 0xFF
        victim.write_bytes(blob)
        with open_store(base) as store:
            for _ in range(3):
                with pytest.raises(StoreCorruptError):
                    store.search("*")

    def test_daemon_loop_survives_unexpected_exception(
        self, base, tmp_path, monkeypatch
    ):
        service = QueryService(open_store(base))
        spool = tmp_path / "spool"
        daemon = CompactionDaemon(service, base, spool, interval=0.02)
        calls = {"n": 0}

        def explode(self):
            calls["n"] += 1
            raise TypeError("unexpected")

        monkeypatch.setattr(CompactionDaemon, "poll_once", explode)
        daemon.start()
        try:
            for _ in range(100):
                if calls["n"] >= 2:
                    break
                threading.Event().wait(0.05)
            # the thread took (at least) two laps through the failure
            assert calls["n"] >= 2
            assert daemon._thread.is_alive()
            assert "TypeError" in service.stats()["compaction"]["last_error"]
        finally:
            daemon.stop()
            service.backend.close()

    def test_sweep_reclaims_orphaned_generations(self, base, delta):
        """Shard files stranded by a crash between a manifest swap and
        its unlink loop are reclaimed by the next compaction's sweep."""
        orphan = base / shard_filename(0, 9, generation=7)
        orphan.write_bytes(b"stale generation leftovers")
        crashed_tmp = base / (shard_filename(1, 9, generation=7) + ".tmp")
        crashed_tmp.write_bytes(b"half-written shard")
        StoreCompactor(base).compact([delta])
        assert not orphan.exists()
        assert not crashed_tmp.exists()
        with open_store(base) as store:
            assert len(store) > 0

    def test_stop_closes_backends_still_in_grace(self, base, delta, tmp_path):
        service = QueryService(open_store(base))
        spool = tmp_path / "spool"
        spool.mkdir()
        delta.rename(spool / "delta.store")
        daemon = CompactionDaemon(service, base, spool, interval=3600)
        old_backend = service.backend
        daemon.poll_once()
        assert daemon._retired and daemon._retired[0][1] is old_backend
        daemon.stop()
        assert daemon._retired == []
        with pytest.raises(ValueError):
            old_backend._shard(0)._pattern_at(0)
        service.backend.close()


class TestThirdReviewRegressions:
    def test_refold_of_already_folded_delta_is_a_noop(self, base, delta):
        """compact() consults the folded log under its own lock, so a
        racing caller handing it an already-folded delta cannot double
        the delta's frequencies."""
        StoreCompactor(base).compact([delta])
        with open_store(base) as store:
            frequencies = {m.pattern: m.frequency for m in store}
        stats = StoreCompactor(base).compact([delta])
        assert stats["noop"] is True
        assert stats["skipped_deltas"] == ["delta.store"]
        assert read_manifest(base)["generation"] == 1
        with open_store(base) as store:
            assert {m.pattern: m.frequency for m in store} == frequencies

    def test_refold_skipped_even_during_rebalance(self, base, delta):
        StoreCompactor(base).compact([delta])
        with open_store(base) as store:
            frequencies = {m.pattern: m.frequency for m in store}
        stats = StoreCompactor(base).compact([delta], shards=5)
        assert stats["skipped_deltas"] == ["delta.store"]
        assert stats["deltas"] == 0
        with open_store(base) as store:
            assert store.num_shards == 5
            assert {m.pattern: m.frequency for m in store} == frequencies

    def test_one_bad_delta_does_not_wedge_the_spool(
        self, base, delta, tmp_path
    ):
        """A garbage file in the spool is quarantined; the healthy
        deltas around it keep folding."""
        service = QueryService(open_store(base))
        spool = tmp_path / "spool"
        spool.mkdir()
        (spool / "bad.store").write_bytes(b"this is not a pattern store")
        delta.rename(spool / "good.store")
        daemon = CompactionDaemon(service, base, spool, interval=3600)
        try:
            assert daemon.poll_once() is True
            assert service.backend.generation == 1
            assert (spool / "applied" / "good.store").exists()
            # the bad delta stays pending (an operator can inspect it),
            # is reported, and does not fail later scans
            assert [d.name for d in daemon.pending_deltas()] == ["bad.store"]
            assert "bad.store" in service.stats()["compaction"]["rejected"]
            assert daemon.poll_once() is False
        finally:
            daemon.stop()
            service.backend.close()
