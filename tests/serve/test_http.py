"""HTTP server: live endpoint behavior and concurrent query traffic."""

import json
import threading
import urllib.error
import urllib.parse
import urllib.request

import pytest

from repro.core import Lash, MiningParams
from repro.query import PatternIndex
from repro.serve import QueryService, create_server, open_store
from repro.serve.http import METRICS_CONTENT_TYPE


@pytest.fixture
def mining_result(fig1_database, fig1_hierarchy):
    return Lash(MiningParams(sigma=2, gamma=1, lam=3)).mine(
        fig1_database, fig1_hierarchy
    )


@pytest.fixture(params=["single", "sharded"])
def server(mining_result, tmp_path, request):
    """A live server on an ephemeral port — backed by a single store
    file or a shard set; every endpoint must behave identically."""
    if request.param == "single":
        path = tmp_path / "patterns.store"
        mining_result.to_store(path)
    else:
        path = tmp_path / "patterns.shards"
        mining_result.to_store(path, shards=3)
    store = open_store(path)
    service = QueryService(store)
    server = create_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    store.close()
    thread.join(timeout=5)


def _get(server, path):
    url = f"http://127.0.0.1:{server.server_port}{path}"
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, json.loads(response.read())


def _post(server, path, payload):
    url = f"http://127.0.0.1:{server.server_port}{path}"
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, json.loads(response.read())


class TestEndpoints:
    def test_healthz(self, server, mining_result):
        status, body = _get(server, "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["patterns"] == len(mining_result)
        assert body["store"]["items"] == len(mining_result.vocabulary)

    def test_query_matches_in_memory_index(self, server, mining_result):
        index = PatternIndex.from_result(mining_result)
        for query in ["a ?", "^B ?", "? ? ?", "a * c"]:
            status, body = _get(
                server, "/query?q=" + urllib.parse.quote(query)
            )
            assert status == 200
            expected = [
                {"pattern": m.render(), "frequency": m.frequency}
                for m in index.search(query, limit=10)
            ]
            assert body["matches"] == expected

    def test_count(self, server, mining_result):
        index = PatternIndex.from_result(mining_result)
        status, body = _get(server, "/count?q=%5EB+%3F")  # "^B ?"
        assert status == 200
        assert body["count"] == index.count("^B ?")
        assert body["total_frequency"] == index.total_frequency("^B ?")

    def test_topk(self, server, mining_result):
        index = PatternIndex.from_result(mining_result)
        status, body = _get(server, "/topk?n=3")
        assert status == 200
        assert [m["pattern"] for m in body["matches"]] == [
            m.render() for m in index.top(3)
        ]

    def test_batch_post(self, server):
        status, body = _post(
            server, "/batch", {"queries": ["a ?", "? ? ?"], "limit": 5}
        )
        assert status == 200
        assert [r["query"] for r in body["results"]] == ["a ?", "? ? ?"]

    def test_stats_counts_traffic(self, server):
        _get(server, "/query?q=a+%3F")
        _get(server, "/query?q=a+%3F")
        status, body = _get(server, "/stats")
        assert status == 200
        assert body["queries"] >= 2
        assert body["cache_hits"] >= 1

    def test_stats_expose_store_breakdown(self, server, mining_result):
        status, body = _get(server, "/stats")
        assert status == 200
        store = body["store"]
        assert store["patterns"] == len(mining_result)
        if "shard_stats" in store:  # sharded variant of the fixture
            assert store["shards"] == len(store["shard_stats"])
            assert sum(
                s["patterns"] for s in store["shard_stats"]
            ) == len(mining_result)

    def test_metrics_prometheus_text(self, server, mining_result):
        _get(server, "/query?q=a+%3F")
        url = f"http://127.0.0.1:{server.server_port}/metrics"
        with urllib.request.urlopen(url, timeout=10) as response:
            assert response.status == 200
            assert response.headers["Content-Type"] == METRICS_CONTENT_TYPE
            text = response.read().decode("utf-8")
        lines = text.splitlines()
        assert f"lash_patterns {len(mining_result)}" in lines
        assert "# TYPE lash_queries_total counter" in lines
        samples = {
            line.split(" ")[0]: line.split(" ")[1]
            for line in lines
            if line and not line.startswith("#")
        }
        assert int(samples["lash_queries_total"]) >= 1
        assert int(samples["lash_errors_total"]) == 0
        if any(line.startswith("lash_store_shards") for line in lines):
            assert 'lash_shard_patterns{shard="0"}' in samples


class TestErrors:
    def _get_error(self, server, path):
        try:
            _get(server, path)
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read())
        pytest.fail(f"expected an HTTP error for {path}")

    def test_missing_query_param(self, server):
        code, body = self._get_error(server, "/query")
        assert code == 400
        assert "missing query parameter" in body["error"]

    def test_unknown_item_is_400(self, server):
        code, body = self._get_error(server, "/query?q=nosuchitem")
        assert code == 400
        assert "nosuchitem" in body["error"]

    def test_bad_limit(self, server):
        code, body = self._get_error(server, "/query?q=a&limit=ten")
        assert code == 400

    def test_unknown_path_is_404(self, server):
        code, _ = self._get_error(server, "/nope")
        assert code == 404

    def test_bad_batch_body(self, server):
        try:
            _post(server, "/batch", {"queries": "a ?"})
        except urllib.error.HTTPError as exc:
            assert exc.code == 400
        else:
            pytest.fail("expected 400 for non-list queries")

    def test_post_error_closes_connection(self, server):
        """An undrained POST body must not desync keep-alive reuse."""
        import socket

        sock = socket.create_connection(
            ("127.0.0.1", server.server_port), timeout=10
        )
        try:
            body = b'{"queries": ["a ?"]}'
            sock.sendall(
                b"POST /nope HTTP/1.1\r\nHost: x\r\nContent-Length: "
                + str(len(body)).encode() + b"\r\n\r\n" + body
            )
            response = sock.recv(65536)
            assert response.startswith(b"HTTP/1.1 404")
            assert b"Connection: close" in response
        finally:
            sock.close()


class TestQueryLanguageOverHTTP:
    """The expanded language — disjunctions and frequency floors —
    answers identically through the HTTP layer."""

    def test_matches_in_memory_index(self, server, mining_result):
        index = PatternIndex.from_result(mining_result)
        for query in [
            "(a|^B) ?", "(b1|b2)", "a ?@2", "^B@1 *", "(a|c)@2 +",
        ]:
            status, body = _get(
                server, "/query?q=" + urllib.parse.quote(query)
            )
            assert status == 200
            assert body["matches"] == [
                {"pattern": m.render(), "frequency": m.frequency}
                for m in index.search(query, limit=10)
            ], query
            assert body["count"] == index.count(query), query

    def test_equivalent_disjunction_orders_share_cache(self, server):
        _get(server, "/query?q=" + urllib.parse.quote("(a|^B) ?"))
        _, before = _get(server, "/stats")
        _get(server, "/query?q=" + urllib.parse.quote("(^B|a) ?"))
        _, after = _get(server, "/stats")
        assert after["cache_hits"] == before["cache_hits"] + 1


class TestErrorPaths:
    """Error surfaces: syntax, unknown items, oversized batches, and a
    corrupt store answering 503 instead of blaming the client."""

    def _get_error(self, server, path):
        try:
            _get(server, path)
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read())
        pytest.fail(f"expected an HTTP error for {path}")

    def _post_error(self, server, path, payload):
        try:
            _post(server, path, payload)
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read())
        pytest.fail(f"expected an HTTP error for {path}")

    def test_malformed_syntax_is_400(self, server):
        for bad in ["(a|", "(a||b)", "()", "^", "@3", "*@3", "a@1@2"]:
            code, body = self._get_error(
                server, "/query?q=" + urllib.parse.quote(bad)
            )
            assert code == 400, bad
            assert "error" in body, bad

    def test_unknown_item_is_400(self, server):
        for bad in ["(a|nosuchitem)", "^nosuchitem@2", "nosuchitem ?"]:
            code, body = self._get_error(
                server, "/query?q=" + urllib.parse.quote(bad)
            )
            assert code == 400, bad
            assert "nosuchitem" in body["error"], bad

    def test_empty_query_is_400(self, server):
        for q in ("/query?q=", "/query?q=%20%20", "/count?q="):
            code, body = self._get_error(server, q)
            assert code == 400, q

    def test_batch_over_query_limit_is_400(self, server):
        from repro.serve.http import MAX_BATCH

        code, body = self._post_error(
            server, "/batch", {"queries": ["a"] * (MAX_BATCH + 1)}
        )
        assert code == 400
        assert "exceeds limit" in body["error"]

    def test_batch_over_body_limit_is_400(self, server):
        """A Content-Length past the 1 MiB cap is refused up front —
        before the body is read — so the client sees the 400 instead of
        a broken pipe mid-upload."""
        import socket

        sock = socket.create_connection(
            ("127.0.0.1", server.server_port), timeout=10
        )
        try:
            sock.sendall(
                b"POST /batch HTTP/1.1\r\nHost: x\r\n"
                b"Content-Type: application/json\r\n"
                b"Content-Length: 2097152\r\n\r\n"
            )
            response = b""
            while b"exceeds" not in response:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                response += chunk
            assert response.startswith(b"HTTP/1.1 400")
            assert b"exceeds" in response
        finally:
            sock.close()

    def test_batch_bad_query_is_isolated_not_fatal(self, server):
        status, body = _post(
            server, "/batch", {"queries": ["a ?", "(a|", "nosuchitem"]}
        )
        assert status == 200
        results = body["results"]
        assert "matches" in results[0]
        assert "error" in results[1] and "error" in results[2]


class _CorruptBackend:
    """Backend stub whose every search trips integrity validation, the
    way a store with rotten postings would."""

    def __len__(self):
        return 0

    def search(self, query, limit=None, min_freq=None):
        from repro.errors import StoreCorruptError
        from repro.query.tokens import normalize_query

        normalize_query(query)  # syntax errors must still win a 400
        raise StoreCorruptError("checksum mismatch in postings section")

    def top(self, n):
        from repro.errors import StoreCorruptError

        raise StoreCorruptError("checksum mismatch in patterns section")


class TestCorruptStoreIs503:
    @pytest.fixture
    def corrupt_server(self):
        service = QueryService(_CorruptBackend())
        server = create_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield server
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)

    def _expect(self, code, fn):
        try:
            fn()
        except urllib.error.HTTPError as exc:
            assert exc.code == code
            return json.loads(exc.read())
        pytest.fail(f"expected HTTP {code}")

    def test_query_is_503(self, corrupt_server):
        body = self._expect(
            503, lambda: _get(corrupt_server, "/query?q=a")
        )
        assert "checksum mismatch" in body["error"]

    def test_topk_is_503(self, corrupt_server):
        self._expect(503, lambda: _get(corrupt_server, "/topk?n=3"))

    def test_batch_is_503_not_per_query_error(self, corrupt_server):
        self._expect(
            503,
            lambda: _post(
                corrupt_server, "/batch", {"queries": ["a", "b"]}
            ),
        )

    def test_malformed_query_still_400(self, corrupt_server):
        # client errors keep their status even on a corrupt replica
        self._expect(
            400, lambda: _get(corrupt_server, "/query?q=%28a%7C")
        )


class TestConcurrency:
    def test_parallel_clients_get_identical_answers(
        self, server, mining_result
    ):
        """Many threads hammer the server; every response is exact."""
        index = PatternIndex.from_result(mining_result)
        queries = ["a ?", "^B ?", "? ? ?", "a * c", "+"]
        expected = {
            q: [
                {"pattern": m.render(), "frequency": m.frequency}
                for m in index.search(q, limit=10)
            ]
            for q in queries
        }
        failures: list[str] = []

        def client(worker: int) -> None:
            for i in range(10):
                query = queries[(worker + i) % len(queries)]
                try:
                    status, body = _get(
                        server, "/query?q=" + urllib.parse.quote(query)
                    )
                    if status != 200 or body["matches"] != expected[query]:
                        failures.append(f"{query}: {body}")
                except Exception as exc:  # noqa: BLE001 - collected below
                    failures.append(f"{query}: {exc!r}")

        threads = [
            threading.Thread(target=client, args=(w,)) for w in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not failures, failures[:3]

        status, stats = _get(server, "/stats")
        assert stats["queries"] >= 80
        assert stats["errors"] == 0


class TestLatencyHistogramExposition:
    def test_metrics_histogram_per_endpoint(self, server):
        """Every tracked endpoint grows a labeled latency histogram
        (bucket/sum/count triplet with cumulative le buckets)."""
        _get(server, "/query?q=a+%3F")
        _get(server, "/count?q=a+%3F")
        status, _ = _get(server, "/stats")
        assert status == 200
        url = f"http://127.0.0.1:{server.server_port}/metrics"
        with urllib.request.urlopen(url, timeout=10) as response:
            text = response.read().decode("utf-8")
        lines = text.splitlines()
        assert "# TYPE lash_request_latency_seconds histogram" in lines
        samples = {}
        for line in lines:
            if line.startswith("lash_request_latency_seconds"):
                name, value = line.rsplit(" ", 1)
                samples[name] = float(value)
        for endpoint in ("query", "count", "stats"):
            label = f'endpoint="{endpoint}"'
            inf = samples[
                f'lash_request_latency_seconds_bucket{{{label},le="+Inf"}}'
            ]
            count = samples[f"lash_request_latency_seconds_count{{{label}}}"]
            assert inf == count >= 1
            assert samples[
                f"lash_request_latency_seconds_sum{{{label}}}"
            ] >= 0.0
        # buckets are cumulative in increasing le order
        prefix = 'lash_request_latency_seconds_bucket{endpoint="query",le="'
        by_bound = {}
        for name, value in samples.items():
            if name.startswith(prefix):
                bound = name[len(prefix):].rstrip('"}')
                by_bound[
                    float("inf") if bound == "+Inf" else float(bound)
                ] = value
        ordered = [by_bound[bound] for bound in sorted(by_bound)]
        assert ordered == sorted(ordered)

    def test_errors_are_observed_too(self, server):
        with pytest.raises(urllib.error.HTTPError):
            _get(server, "/query?q=%28broken")
        status, stats = _get(server, "/stats")
        assert status == 200
        assert stats["request_latency"]["query"]["count"] >= 1

    def test_unknown_paths_not_labeled(self, server):
        with pytest.raises(urllib.error.HTTPError):
            _get(server, "/nope")
        _, stats = _get(server, "/stats")
        assert "nope" not in stats.get("request_latency", {})

    def test_generation_gauge_for_sharded_store(self, server):
        url = f"http://127.0.0.1:{server.server_port}/metrics"
        with urllib.request.urlopen(url, timeout=10) as response:
            text = response.read().decode("utf-8")
        lines = text.splitlines()
        if any(line.startswith("lash_store_shards") for line in lines):
            assert any(
                line.startswith("lash_store_generation ") for line in lines
            )


@pytest.mark.parametrize("server", ["single", "sharded"], indirect=True)
class TestMinFreqAndNegationOverHTTP:
    """Phase-2 query-language features at the HTTP surface: the σ
    override as a request parameter, negation served when positive
    tokens anchor it and refused when the query is all-negative."""

    def test_min_freq_filters_server_side(self, server):
        _, full = _get(server, "/query?q=%2B&limit=100")
        frequencies = sorted(
            (m["frequency"] for m in full["matches"]), reverse=True
        )
        threshold = frequencies[len(frequencies) // 2]
        _, floored = _get(
            server, f"/query?q=%2B&limit=100&min_freq={threshold}"
        )
        assert floored["matches"] == [
            m for m in full["matches"] if m["frequency"] >= threshold
        ]
        assert floored["count"] == len(floored["matches"])
        assert floored["min_freq"] == threshold

    def test_count_accepts_min_freq(self, server):
        _, full = _get(server, "/count?q=%2B")
        _, floored = _get(server, "/count?q=%2B&min_freq=1000000")
        assert floored["count"] == 0 < full["count"]
        assert floored["min_freq"] == 1000000

    def test_batch_body_min_freq(self, server):
        _, body = _post(
            server,
            "/batch",
            {"queries": ["+", "a *"], "limit": 100, "min_freq": 2},
        )
        for result in body["results"]:
            assert result["min_freq"] == 2
            assert all(m["frequency"] >= 2 for m in result["matches"])

    def test_negation_and_gap_queries_answer(self, server):
        query = urllib.parse.quote("a !c *{0,1}")
        status, body = _get(server, f"/query?q={query}")
        assert status == 200
        assert all("c" not in m["pattern"].split()[1:2] for m in body["matches"])

    def _expect_400(self, server, path):
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(server, path)
        assert err.value.code == 400
        return json.loads(err.value.read())

    def test_all_negative_query_is_400(self, server):
        body = self._expect_400(
            server, "/query?q=" + urllib.parse.quote("!a ?")
        )
        assert "all-negative" in body["error"]

    def test_bad_min_freq_is_400(self, server):
        body = self._expect_400(server, "/query?q=a&min_freq=-1")
        assert "min_freq" in body["error"]
        body = self._expect_400(server, "/query?q=a&min_freq=many")
        assert "min_freq" in body["error"]

    def test_batch_bad_min_freq_is_400(self, server):
        for bad in (-1, "3", True):
            with pytest.raises(urllib.error.HTTPError) as err:
                _post(server, "/batch", {"queries": ["a"], "min_freq": bad})
            assert err.value.code == 400

    def test_batch_isolates_all_negative_query(self, server):
        _, body = _post(
            server, "/batch", {"queries": ["a *", "!a"]}
        )
        results = body["results"]
        assert "error" not in results[0]
        assert "all-negative" in results[1]["error"]
