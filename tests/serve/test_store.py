"""PatternStore: binary round-trip and equivalence with PatternIndex."""

import random

import pytest

from repro.core import Lash, MiningParams
from repro.errors import EncodingError, StoreCorruptError
from repro.hierarchy import Hierarchy
from repro.query import PatternIndex, code_patterns
from repro.serve import PatternStore, write_store
from repro.serve.store import HEADER_SIZE


@pytest.fixture
def fig1_result(fig1_database, fig1_hierarchy):
    return Lash(MiningParams(sigma=2, gamma=1, lam=3)).mine(
        fig1_database, fig1_hierarchy
    )


@pytest.fixture
def fig1_store(fig1_result, tmp_path):
    path = tmp_path / "fig1.store"
    with PatternStore.build(
        path, fig1_result.patterns, fig1_result.vocabulary
    ) as store:
        yield store


FIG1_QUERIES = [
    "a ?", "^B ?", "? ? ?", "*", "+", "a * c", "^D", "a", "? a",
    "^B + *", "a + a",
]


class TestRoundTrip:
    def test_header_metadata(self, fig1_result, fig1_store):
        info = fig1_store.describe()
        assert info["patterns"] == len(fig1_result)
        assert info["items"] == len(fig1_result.vocabulary)
        assert info["total_frequency"] == sum(
            fig1_result.patterns.values()
        )
        assert info["max_length"] == max(
            len(p) for p in fig1_result.patterns
        )
        assert info["file_bytes"] > HEADER_SIZE

    @pytest.mark.parametrize("query", FIG1_QUERIES)
    def test_search_identical_to_index(self, fig1_result, fig1_store, query):
        index = PatternIndex.from_result(fig1_result)
        assert fig1_store.search(query) == index.search(query)
        assert fig1_store.count(query) == index.count(query)
        assert fig1_store.total_frequency(query) == index.total_frequency(
            query
        )

    def test_iteration_and_top(self, fig1_result, fig1_store):
        index = PatternIndex.from_result(fig1_result)
        assert list(fig1_store) == list(index)
        assert fig1_store.top(5) == index.top(5)
        assert len(fig1_store) == len(index)

    def test_exact_frequency(self, fig1_result, fig1_store):
        index = PatternIndex.from_result(fig1_result)
        for names in [("a", "B"), ("a",), ("a", "B", "c"), ("e", "f")]:
            assert fig1_store.frequency(*names) == index.frequency(*names)
        assert ("a", "B") in fig1_store
        assert ("zzz",) not in fig1_store

    def test_hierarchy_navigation(self, fig1_result, fig1_store):
        index = PatternIndex.from_result(fig1_result)
        assert fig1_store.generalizations_of(
            ("a", "b1")
        ) == index.generalizations_of(("a", "b1"))
        assert fig1_store.specializations_of(
            ("a", "B")
        ) == index.specializations_of(("a", "B"))

    def test_slot_fillers(self, fig1_result, fig1_store):
        index = PatternIndex.from_result(fig1_result)
        assert fig1_store.slot_fillers("a ?", 1) == index.slot_fillers(
            "a ?", 1
        )

    def test_vocabulary_roundtrip(self, fig1_result, fig1_store):
        original = fig1_result.vocabulary
        loaded = fig1_store.vocabulary
        assert len(loaded) == len(original)
        for item_id in range(len(original)):
            assert loaded.name(item_id) == original.name(item_id)
            assert loaded.frequency(item_id) == original.frequency(item_id)
            assert loaded.parent_ids(item_id) == original.parent_ids(item_id)
            assert loaded.ancestors_or_self(
                item_id
            ) == original.ancestors_or_self(item_id)

    def test_to_store_hook(self, fig1_result, tmp_path):
        path = tmp_path / "hook.store"
        fig1_result.to_store(path)
        with PatternStore.open(path) as store:
            assert len(store) == len(fig1_result)
            assert store.frequency("a", "B") == fig1_result.frequency(
                "a", "B"
            )


def test_empty_pattern_rejected(fig1_result, tmp_path):
    with pytest.raises(EncodingError, match="empty pattern"):
        write_store(
            tmp_path / "bad.store", {(): 5}, fig1_result.vocabulary
        )


def test_rebuild_does_not_disturb_open_store(fig1_result, tmp_path):
    """Rebuilding in place must not truncate a live reader's mmap."""
    path = tmp_path / "live.store"
    write_store(path, fig1_result.patterns, fig1_result.vocabulary)
    with PatternStore.open(path) as live:
        before = live.search("a ?")
        write_store(path, fig1_result.patterns, fig1_result.vocabulary)
        assert live.search("^B ?")  # old mapping still fully readable
        assert live.search("a ?") == before
    with PatternStore.open(path) as rebuilt:
        assert rebuilt.search("a ?") == before
    assert not path.with_name(path.name + ".tmp").exists()


def test_decode_caches_are_bounded(fig1_result, tmp_path):
    path = tmp_path / "capped.store"
    write_store(path, fig1_result.patterns, fig1_result.vocabulary)
    index = PatternIndex.from_result(fig1_result)
    with PatternStore(
        path, pattern_cache_size=3, postings_cache_size=2
    ) as store:
        # broad scans stay correct while the caches respect their caps
        assert store.search("*") == index.search("*")
        assert store.search("^B ?") == index.search("^B ?")
        assert len(store._pattern_cache) <= 3
        assert len(store._postings_cache) <= 2


def test_frequency_zero_pattern_is_still_a_member(tmp_path):
    """Membership means 'stored', not 'frequency > 0' — on both backends."""
    coded, vocabulary = code_patterns({("a",): 0, ("a", "b"): 2})
    index = PatternIndex(coded, vocabulary)
    path = tmp_path / "zero.store"
    with PatternStore.build(path, coded, vocabulary) as store:
        for backend in (index, store):
            assert ("a",) in backend
            assert backend.frequency("a") == 0
            assert ("b",) not in backend


class TestLaziness:
    def test_open_reads_header_only(self, fig1_store):
        assert fig1_store._vocab is None
        assert fig1_store._by_length is None
        assert fig1_store._pattern_cache == {}
        fig1_store.describe()  # header-only metadata stays lazy
        assert fig1_store._vocab is None

    def test_sections_load_on_demand(self, fig1_store):
        fig1_store.search("a ?")
        assert fig1_store._vocab is not None
        assert fig1_store._pattern_cache  # decoded only touched records


class TestCorruption:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.store"
        path.write_bytes(b"NOTASTORExxxxxxxxxxxxxxxxxxxx" * 10)
        with pytest.raises(EncodingError, match="bad magic"):
            PatternStore.open(path)

    def test_too_short(self, tmp_path):
        path = tmp_path / "short.store"
        path.write_bytes(b"RPROPST1")
        with pytest.raises(EncodingError, match="bad magic|truncated"):
            PatternStore.open(path)

    def test_truncated_body(self, fig1_result, tmp_path):
        path = tmp_path / "trunc.store"
        write_store(path, fig1_result.patterns, fig1_result.vocabulary)
        data = path.read_bytes()
        path.write_bytes(data[:-10])
        with pytest.raises(StoreCorruptError, match="truncated"):
            PatternStore.open(path)


class TestChecksums:
    def _flip_byte(self, path, offset_from_header: int) -> None:
        data = bytearray(path.read_bytes())
        index = HEADER_SIZE + offset_from_header
        data[index] ^= 0xFF
        path.write_bytes(bytes(data))

    def test_bit_rot_detected_on_open(self, fig1_result, tmp_path):
        path = tmp_path / "rot.store"
        write_store(path, fig1_result.patterns, fig1_result.vocabulary)
        self._flip_byte(path, 3)  # somewhere in the vocabulary section
        with pytest.raises(StoreCorruptError, match="checksum mismatch"):
            PatternStore.open(path)

    def test_mismatch_names_the_section(self, fig1_result, tmp_path):
        path = tmp_path / "rot.store"
        write_store(path, fig1_result.patterns, fig1_result.vocabulary)
        self._flip_byte(path, 0)
        with pytest.raises(StoreCorruptError, match="vocabulary section"):
            PatternStore.open(path)

    def test_verification_skippable(self, fig1_result, tmp_path):
        """`verify_checksums=False` restores O(header) open even on a
        damaged file; decode errors then surface lazily (or not at all
        for untouched sections)."""
        path = tmp_path / "rot.store"
        write_store(path, fig1_result.patterns, fig1_result.vocabulary)
        self._flip_byte(path, 0)
        store = PatternStore.open(path, verify_checksums=False)
        store.close()

    def test_unchecksummed_store_opens_without_validation(
        self, fig1_result, tmp_path
    ):
        path = tmp_path / "plain.store"
        write_store(
            path,
            fig1_result.patterns,
            fig1_result.vocabulary,
            checksums=False,
        )
        with PatternStore.open(path) as store:
            assert store.describe()["checksums"] is False
            index = PatternIndex.from_result(fig1_result)
            assert store.search("a ?") == index.search("a ?")

    def test_checksums_add_exactly_one_trailer(self, fig1_result, tmp_path):
        plain = tmp_path / "plain.store"
        summed = tmp_path / "summed.store"
        write_store(
            plain,
            fig1_result.patterns,
            fig1_result.vocabulary,
            checksums=False,
        )
        write_store(summed, fig1_result.patterns, fig1_result.vocabulary)
        # same sections, plus 6 × u32 checksums and the flags bit
        assert (
            summed.stat().st_size == plain.stat().st_size + 24
        )
        with PatternStore.open(summed) as store:
            assert store.describe()["checksums"] is True


def _random_setup(rng: random.Random):
    """A random DAG hierarchy plus random decoded patterns over it."""
    hierarchy = Hierarchy()
    roots = [f"R{i}" for i in range(rng.randint(2, 4))]
    for root in roots:
        hierarchy.add_item(root)
    mids = [f"m{i}" for i in range(rng.randint(3, 6))]
    for mid in mids:
        hierarchy.add_edge(mid, rng.choice(roots))
        if rng.random() < 0.3:  # occasional DAG node
            other = rng.choice(roots)
            if other not in hierarchy.parents(mid):
                hierarchy.add_edge(mid, other)
    leaves = [f"l{i}" for i in range(rng.randint(4, 10))]
    for leaf in leaves:
        hierarchy.add_edge(leaf, rng.choice(mids))
    items = roots + mids + leaves + ["loner"]  # item outside the forest
    patterns = {}
    for _ in range(rng.randint(10, 60)):
        length = rng.randint(1, 4)
        pattern = tuple(rng.choice(items) for _ in range(length))
        patterns[pattern] = rng.randint(1, 100)
    return hierarchy, patterns, items


def _random_queries(rng: random.Random, items, n=25):
    queries = []
    for _ in range(n):
        length = rng.randint(1, 4)
        tokens = []
        for _ in range(length):
            kind = rng.random()
            if kind < 0.4:
                tokens.append(rng.choice(items))
            elif kind < 0.6:
                tokens.append("^" + rng.choice(items))
            else:
                tokens.append(rng.choice(["?", "+", "*"]))
        queries.append(" ".join(tokens))
    return queries


@pytest.mark.parametrize("seed", range(8))
def test_randomized_store_matches_index(tmp_path, seed):
    """The store answers every query exactly like the in-memory index."""
    rng = random.Random(seed)
    hierarchy, patterns, items = _random_setup(rng)
    coded, vocabulary = code_patterns(patterns, hierarchy)
    index = PatternIndex(coded, vocabulary)
    path = tmp_path / f"rand{seed}.store"
    with PatternStore.build(path, coded, vocabulary) as store:
        assert len(store) == len(index)
        assert list(store) == list(index)
        for query in _random_queries(rng, items):
            assert store.search(query) == index.search(query), query
            assert store.search(query, limit=3) == index.search(
                query, limit=3
            ), query
        for pattern in list(patterns)[:10]:
            assert store.frequency(*pattern) == index.frequency(*pattern)
        for pattern in list(patterns)[:5]:
            assert store.generalizations_of(
                pattern
            ) == index.generalizations_of(pattern)
            assert store.specializations_of(
                pattern
            ) == index.specializations_of(pattern)
