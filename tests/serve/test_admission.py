"""Admission control: cost gates, budgets, and the 429 path.

The estimator runs only inside cache-miss compute, so three properties
fall out by construction and are pinned here: cache hits never pay the
gate, rejections are never cached (a raised estimate can't reach the
cache), and budgeted answers reuse the partial-flag machinery that
already keeps degraded answers out of the cache.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.parse
import urllib.request

import pytest

from repro.core import Lash, MiningParams
from repro.errors import (
    InvalidParameterError,
    QueryRejectedError,
    ReproError,
)
from repro.hierarchy import Hierarchy
from repro.query import PatternIndex, code_patterns, parse_query
from repro.serve import QueryService, create_server, open_store
from repro.serve.distributed import ShardServer
from repro.serve.protocol import PROTOCOL_VERSION, encode_tokens
from repro.serve.router import RouterBackend, ShardClient

from tests.serve.test_distributed import _cluster_for


@pytest.fixture
def backend():
    patterns = {
        ("a", "B"): 9,
        ("a", "b1"): 5,
        ("a",): 12,
        ("c", "a"): 3,
        ("B", "c"): 2,
    }
    hierarchy = Hierarchy()
    for root in ("a", "B", "c"):
        hierarchy.add_item(root)
    hierarchy.add_edge("b1", "B")
    coded, vocabulary = code_patterns(patterns, hierarchy)
    return PatternIndex(coded, vocabulary)


def _gate_between(backend, cheap_query, broad_query):
    """A max_cost ceiling that admits ``cheap_query`` and rejects
    ``broad_query`` on this backend."""
    cheap = backend.estimate_cost(cheap_query).cost
    broad = backend.estimate_cost(broad_query).cost
    assert cheap < broad, (cheap, broad)
    return (cheap + broad) / 2


# ----------------------------------------------------------------------
# service-level gate
# ----------------------------------------------------------------------


class TestAdmissionGate:
    def test_responses_carry_the_estimate(self, backend):
        service = QueryService(backend)
        response = service.query("a ?")
        assert response["estimated_cost"] > 0
        admission = service.stats()["admission"]
        assert admission["max_cost"] is None
        assert admission["cost"]["count"] == 1

    def test_rejection_raises_429_and_is_never_cached(self, backend):
        gate = _gate_between(backend, "a ?", "? ?")
        service = QueryService(backend, max_cost=gate)
        for _ in range(2):  # re-asking re-rejects: nothing was cached
            with pytest.raises(QueryRejectedError) as info:
                service.query("? ?")
            assert info.value.estimated_cost > gate
            assert info.value.max_cost == gate
        stats = service.stats()
        assert stats["admission"]["rejected"] == 2
        assert stats["cache_entries"] == 0
        # the error is a ReproError, so transports map it uniformly
        assert isinstance(info.value, ReproError)

    def test_cheap_queries_pass_the_same_gate(self, backend):
        gate = _gate_between(backend, "a ?", "? ?")
        service = QueryService(backend, max_cost=gate)
        assert service.query("a ?")["count"] == 2
        assert service.stats()["admission"]["rejected"] == 0

    def test_cache_hits_bypass_the_gate(self, backend):
        service = QueryService(backend, max_cost=10_000_000)
        first = service.query("a ?")
        second = service.query("a ?")
        assert first == second  # hit carries the same estimated_cost
        admission = service.stats()["admission"]
        # the estimator ran once: hits are free and never re-priced
        assert admission["cost"]["count"] == 1
        assert service.stats()["cache_hits"] == 1

    def test_ctor_validation(self, backend):
        with pytest.raises(InvalidParameterError, match="max_cost"):
            QueryService(backend, max_cost=0)
        with pytest.raises(InvalidParameterError, match="budget_cost"):
            QueryService(backend, budget_cost=-1)
        with pytest.raises(InvalidParameterError, match="match_budget"):
            QueryService(backend, match_budget=0)
        with pytest.raises(InvalidParameterError, match="exceeds"):
            QueryService(backend, max_cost=10, budget_cost=20)


class TestBudgetedQueries:
    def test_binding_budget_flags_partial_and_skips_cache(self, backend):
        service = QueryService(
            backend, budget_cost=0.5, match_budget=1
        )
        response = service.query("? ?")
        assert len(response["matches"]) == 1
        partial = response["partial"]
        assert partial["budgeted"] is True
        assert partial["match_budget"] == 1
        assert partial["estimated_cost"] > 0.5
        stats = service.stats()
        assert stats["admission"]["budgeted"] == 1
        assert stats["cache_entries"] == 0
        service.query("? ?")  # recomputed, not served from cache
        assert service.stats()["cache_hits"] == 0
        assert service.stats()["admission"]["budgeted"] == 2

    def test_loose_budget_stays_clean_and_cached(self, backend):
        service = QueryService(
            backend, budget_cost=0.5, match_budget=100
        )
        response = service.query("? ?")
        assert "partial" not in response
        stats = service.stats()
        assert stats["admission"]["budgeted"] == 1  # budget applied...
        assert stats["cache_entries"] == 1  # ...but never bound


class TestTopkValidation:
    @pytest.mark.parametrize("n", [True, False, "3", 1.5, None])
    def test_non_integer_n_rejected(self, backend, n):
        service = QueryService(backend)
        with pytest.raises(InvalidParameterError, match="n must be"):
            service.topk(n)

    def test_small_n_still_rejected(self, backend):
        service = QueryService(backend)
        for n in (0, -1):
            with pytest.raises(InvalidParameterError, match="n must be"):
                service.topk(n)


# ----------------------------------------------------------------------
# HTTP surface
# ----------------------------------------------------------------------


class TestHttpAdmission:
    @pytest.fixture
    def server(self, backend):
        gate = _gate_between(backend, "a ?", "? ?")
        service = QueryService(backend, max_cost=gate)
        server = create_server(service, port=0)
        thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        thread.start()
        yield server
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)

    def _get(self, server, path):
        url = f"http://127.0.0.1:{server.server_port}{path}"
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, response.read()

    def test_rejected_query_is_429_with_costs(self, server):
        url = (
            f"http://127.0.0.1:{server.server_port}/query?q="
            + urllib.parse.quote("? ?")
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(url, timeout=10)
        assert info.value.code == 429
        body = json.loads(info.value.read())
        assert body["estimated_cost"] > body["max_cost"] > 0
        assert "rejected" in body["error"]

    def test_metrics_expose_admission_counters(self, server):
        status, _ = self._get(
            server, "/query?q=" + urllib.parse.quote("a ?")
        )
        assert status == 200
        with pytest.raises(urllib.error.HTTPError):
            self._get(server, "/query?q=" + urllib.parse.quote("? ?"))
        _, raw = self._get(server, "/metrics")
        text = raw.decode()
        assert "lash_rejected_queries_total 1" in text
        assert "lash_budgeted_queries_total 0" in text
        assert "lash_cache_evictions_total 0" in text
        # both queries were priced (the rejection too) → 2 observations
        assert 'lash_query_cost_units_bucket{le="+Inf"} 2' in text
        assert "lash_query_cost_units_count 2" in text

    def test_stats_expose_admission_block(self, server):
        _, raw = self._get(server, "/stats")
        admission = json.loads(raw)["admission"]
        assert admission["max_cost"] > 0
        assert admission["rejected"] == 0


# ----------------------------------------------------------------------
# distributed estimate op + router-side gate plumbing
# ----------------------------------------------------------------------


NUM_SHARDS = 4


@pytest.fixture
def shard_store_path(fig1_database, fig1_hierarchy, tmp_path):
    mined = Lash(MiningParams(sigma=2, gamma=1, lam=3)).mine(
        fig1_database, fig1_hierarchy
    )
    path = tmp_path / "patterns.shards"
    mined.to_store(path, shards=NUM_SHARDS)
    return path


class TestDistributedEstimate:
    def test_estimate_op_round_trip(self, shard_store_path):
        with ShardServer(
            shard_store_path, http_port=None
        ) as server, open_store(shard_store_path) as store:
            host, port = server.address
            client = ShardClient(host, port)
            try:
                wire = client.request(
                    {
                        "v": PROTOCOL_VERSION,
                        "op": "estimate",
                        "tokens": encode_tokens(parse_query("a ?")),
                    },
                    5.0,
                )["estimate"]
            finally:
                client.close()
            local = store.estimate_cost("a ?").to_wire()
            assert wire == local
            assert isinstance(wire["cost"], int)
            assert wire["shards"] == NUM_SHARDS

    def test_router_scales_a_slice_estimate(self, shard_store_path):
        with ShardServer(
            shard_store_path, shard_subset=[0, 1], http_port=None
        ) as s1, ShardServer(
            shard_store_path, shard_subset=[2, 3], http_port=None
        ) as s2:
            cluster = _cluster_for(
                [(s1, [0, 1]), (s2, [2, 3])], num_shards=NUM_SHARDS
            )
            router = RouterBackend(cluster)
            try:
                tokens = parse_query("? ?")
                estimate = router.estimate_cost(tokens)
                assert estimate.cost > 0
                # a 2-shard slice answered: extrapolated to 4 shards
                assert estimate.shards == NUM_SHARDS
                again = router.estimate_cost(tokens)
                assert again.cost == estimate.cost
                assert len(router._estimate_cache) == 1

                # query errors are the search's to raise, not the
                # estimator's: the gate steps aside with None
                assert router.estimate_cost(parse_query("!a")) is None
            finally:
                router.close()
