"""The streaming-merge memory guard (acceptance criterion of the
streaming store pipeline).

``merge_stores`` must run in memory bounded by its sort buffer, not by
the size of the source stores: merging stores several times larger must
not raise the tracemalloc peak more than a small fixed slack.  CI runs
this file as part of the store-pipeline smoke job, so a regression that
re-materializes pattern sets anywhere on the merge path fails the
build.
"""

import random
import tracemalloc

from repro.hierarchy import Hierarchy
from repro.query import code_patterns
from repro.serve import merge_stores, open_store, write_store

#: fixed vocabulary for every generated store, so the O(items) cost —
#: legitimately resident in both runs — cancels out of the comparison
ITEMS = [f"i{k:02d}" for k in range(40)]

#: large enough that both workloads fill it several times over — peak
#: memory is then the buffer itself plus a small per-spill-run term,
#: not the pattern count
SORT_BUFFER = 4096


def _build_pair(tmp_path, label, n_patterns, seed):
    rng = random.Random(seed)
    hierarchy = Hierarchy.flat(ITEMS)
    paths = []
    for part in range(2):
        patterns = {}
        while len(patterns) < n_patterns:
            length = rng.randint(1, 4)
            pattern = tuple(rng.choice(ITEMS) for _ in range(length))
            patterns[pattern] = rng.randint(1, 90)
        coded, vocabulary = code_patterns(patterns, hierarchy)
        path = tmp_path / f"{label}{part}.store"
        write_store(path, coded, vocabulary)
        paths.append(path)
    return paths


def _merge_peak(sources, out):
    """Peak traced bytes over one streaming merge."""
    tracemalloc.start()
    try:
        merge_stores(sources, out, sort_buffer=SORT_BUFFER)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


def test_merge_peak_memory_independent_of_store_size(tmp_path):
    small_sources = _build_pair(tmp_path, "small", 6_000, seed=1)
    large_sources = _build_pair(tmp_path, "large", 30_000, seed=2)

    small_peak = _merge_peak(small_sources, tmp_path / "small.merged")
    large_peak = _merge_peak(large_sources, tmp_path / "large.merged")

    # 5x the patterns may cost a little more (more spill-run handles,
    # allocator noise) but nothing close to 5x: the old materializing
    # merge decoded every source into dicts and blew far past this
    # bound (measured ~5.5x growth, >30x this ceiling at these sizes)
    assert large_peak < small_peak * 1.4 + 512 * 1024, (
        f"streaming merge peak grew with store size: "
        f"{small_peak} -> {large_peak} bytes"
    )

    # and the bounded merge still produced the real union
    with open_store(tmp_path / "large.merged") as store:
        assert len(store) > 30_000


def test_bounded_merge_output_matches_unbounded(tmp_path):
    sources = _build_pair(tmp_path, "eq", 800, seed=3)
    bounded = tmp_path / "bounded.store"
    merge_stores(sources, bounded, sort_buffer=64)
    unbounded = tmp_path / "unbounded.store"
    merge_stores(sources, unbounded, sort_buffer=1 << 20)
    assert bounded.read_bytes() == unbounded.read_bytes()
