"""Live ingestion: signed delta stores, the :class:`Ingestor` state
machine, torn-publish crash safety, applied-archive retention, and the
freshness watermarks surfaced on every serving endpoint."""

import json
import os
import random
import threading
import urllib.request

import pytest

from repro.core import Lash, MiningParams
from repro.errors import EncodingError
from repro.sequence import SequenceDatabase
from repro.serve import (
    CompactionDaemon,
    Ingestor,
    QueryService,
    create_server,
    open_store,
    write_store,
)
from repro.serve.format import (
    delta_meta_path,
    read_manifest,
    write_delta_meta,
)
from repro.serve.ingest import JOURNAL_NAME, STATE_NAME, _stamp_manifest

SEED = int(os.environ.get("LASH_INGEST_SEED", "20260808"))

PARAMS = MiningParams(sigma=1, gamma=1, lam=3)

BASE = [
    ["a", "b1", "a", "b1"],
    ["a", "b3", "c", "c", "b2"],
    ["a", "c"],
]
BATCH1 = [("b11", "a", "e", "a"), ("a", "b12", "d1", "c")]
BATCH2 = [("b13", "f", "d2"), ("a", "c")]


def _mine(sequences, hierarchy):
    return Lash(PARAMS).mine(SequenceDatabase(list(sequences)), hierarchy)


@pytest.fixture
def live(fig1_hierarchy, tmp_path):
    path = tmp_path / "live.shards"
    _mine(BASE, fig1_hierarchy).to_store(path, shards=3)
    return path


@pytest.fixture
def rig(live, tmp_path):
    """Store + ingestor + service + daemon, wired like ``lash serve``."""
    spool = tmp_path / "spool"
    ingestor = Ingestor.init(
        tmp_path / "state", live, spool, gamma=PARAMS.gamma, lam=PARAMS.lam
    )
    service = QueryService(open_store(live))
    daemon = CompactionDaemon(service, live, spool, interval=3600)
    yield ingestor, service, daemon, spool
    service.backend.close()


# ----------------------------------------------------------------------
# signed delta stores
# ----------------------------------------------------------------------


class TestDeltaStores:
    def test_signed_frequencies_round_trip(self, fig1_vocabulary, tmp_path):
        patterns = {(1,): 3, (1, 2): -2, (2,): -1}
        path = tmp_path / "delta.store"
        write_store(path, patterns, fig1_vocabulary, delta=True)
        with open_store(path) as store:
            assert store.describe()["delta"] is True
            got = {
                fig1_vocabulary.encode_sequence(m.pattern): m.frequency
                for m in store
            }
        assert got == patterns

    def test_delta_writer_rejects_zero_frequency(
        self, fig1_vocabulary, tmp_path
    ):
        with pytest.raises(EncodingError, match="frequency"):
            write_store(
                tmp_path / "z.store",
                {(1,): 0},
                fig1_vocabulary,
                delta=True,
            )

    def test_plain_writer_rejects_negative(
        self, fig1_vocabulary, tmp_path
    ):
        # zero is a legal plain record (membership means "stored");
        # only decrements are reserved for delta stores
        with pytest.raises(EncodingError, match="delta"):
            write_store(
                tmp_path / "n.store", {(1,): -2}, fig1_vocabulary
            )

    def test_sidecar_names_exact_bytes(self, fig1_vocabulary, tmp_path):
        path = tmp_path / "delta.store"
        write_store(path, {(1,): 1}, fig1_vocabulary, delta=True)
        write_delta_meta(path, {"kind": "add"})
        meta = json.loads(delta_meta_path(path).read_text())
        assert meta["bytes"] == path.stat().st_size
        assert meta["format"] == "repro-ingest-delta"


# ----------------------------------------------------------------------
# the ingestor state machine
# ----------------------------------------------------------------------


class TestIngestor:
    def test_init_requires_sharded_store(self, fig1_hierarchy, tmp_path):
        single = tmp_path / "single.store"
        _mine(BASE, fig1_hierarchy).to_store(single)
        with pytest.raises(EncodingError, match="sharded"):
            Ingestor.init(
                tmp_path / "state", single, tmp_path / "spool"
            )

    def test_init_twice_refuses(self, live, tmp_path):
        Ingestor.init(tmp_path / "state", live, tmp_path / "spool")
        with pytest.raises(EncodingError, match="already exists"):
            Ingestor.init(tmp_path / "state", live, tmp_path / "spool")

    def test_open_without_init(self, tmp_path):
        with pytest.raises(EncodingError, match="ingest init"):
            Ingestor.open(tmp_path / "nowhere")

    def test_init_stamps_zero_watermark(self, live, tmp_path):
        Ingestor.init(tmp_path / "state", live, tmp_path / "spool")
        assert read_manifest(live)["ingest"] == {
            "ingested_through": 0,
            "retained_from": 0,
        }

    def test_add_validates_before_journaling(self, rig, tmp_path):
        ingestor, _, _, _ = rig
        with pytest.raises(EncodingError, match="empty"):
            ingestor.add([])
        with pytest.raises(EncodingError, match="empty sequence"):
            ingestor.add([("a",), ()])
        with pytest.raises(EncodingError, match="stable"):
            ingestor.add([("a", "never-seen-item")])
        journal = tmp_path / "state" / JOURNAL_NAME
        assert journal.read_text() == ""  # nothing was journaled

    def test_add_publishes_one_delta_per_flush(self, rig):
        ingestor, _, _, spool = rig
        report = ingestor.add(BATCH1)
        assert report["published"] == "delta-00000000-00000002.store"
        assert report["ingested_through"] == 2
        assert (spool / report["published"]).is_file()
        assert delta_meta_path(spool / report["published"]).is_file()

    def test_retire_needs_published_sequences(self, rig):
        ingestor, _, _, _ = rig
        with pytest.raises(EncodingError, match="retire"):
            ingestor.retire(1)
        ingestor.add(BATCH1)
        with pytest.raises(EncodingError, match="only 2"):
            ingestor.retire(3)
        with pytest.raises(EncodingError, match=">= 1"):
            ingestor.retire(0)

    def test_status_reports_watermarks(self, rig):
        ingestor, _, _, _ = rig
        ingestor.add(BATCH1)
        ingestor.add(BATCH2)
        ingestor.retire(1)
        status = ingestor.status()
        assert status["journaled"] == 4
        assert status["published_through"] == 4
        assert status["retained_from"] == 1
        assert status["retained"] == 3
        assert len(status["spool_pending"]) == 3

    def test_flush_is_a_noop_when_clean(self, rig):
        ingestor, _, _, _ = rig
        ingestor.add(BATCH1)
        report = ingestor.flush()
        assert report["published"] is None
        assert report["ingested_through"] == 2

    def test_crash_between_publish_and_state_write_heals(
        self, rig, tmp_path
    ):
        """The delta name is a deterministic function of the sequence
        range, so a rescan adopts a published-but-unrecorded delta
        instead of publishing (and later double-applying) a second."""
        ingestor, _, _, spool = rig
        ingestor.add(BATCH1)
        state_path = tmp_path / "state" / STATE_NAME
        state = json.loads(state_path.read_text())
        state["published_through"] = 0  # simulated crash before persist
        state_path.write_text(json.dumps(state))

        reopened = Ingestor.open(tmp_path / "state")
        report = reopened.flush()
        assert report["published"] is None  # recovered, not re-published
        assert report["ingested_through"] == 2
        deltas = [p.name for p in spool.iterdir() if p.suffix == ".store"]
        assert deltas == ["delta-00000000-00000002.store"]

    def test_crash_mid_delta_write_leaves_only_staging(self, rig):
        """A torn ``write_store`` leaves a ``.part`` the daemon never
        scans; the next flush overwrites it and publishes cleanly."""
        ingestor, _, daemon, spool = rig
        ingestor.add(BATCH1)
        # simulate a crash mid-write of the *next* delta: stale .part
        (spool / "delta-00000002-00000004.store.part").write_bytes(
            b"torn half-written delta"
        )
        assert [p.name for p in daemon.pending_deltas()] == [
            "delta-00000000-00000002.store"
        ]
        report = ingestor.add(BATCH2)
        assert report["published"] == "delta-00000002-00000004.store"
        assert not (
            spool / "delta-00000002-00000004.store.part"
        ).exists()


# ----------------------------------------------------------------------
# crash injection: torn deltas never fold, watermarks never regress
# ----------------------------------------------------------------------


class TestCrashInjection:
    def test_torn_delta_is_quarantined_at_random_offsets(self, rig):
        """Truncate/corrupt the published delta at randomized byte
        offsets: the daemon must reject every damaged version (CRC
        against the sidecar), keep serving the old store, and never
        move the watermark — then fold the repaired bytes normally."""
        rng = random.Random(SEED)
        ingestor, service, daemon, spool = rig
        ingestor.add(BATCH1)
        daemon.poll_once()
        assert service.backend.ingested_through == 2
        before = [(m.pattern, m.frequency) for m in service.backend]

        ingestor.add(BATCH2)
        delta = spool / "delta-00000002-00000004.store"
        good = delta.read_bytes()
        for trial in range(4):
            offset = rng.randrange(1, len(good))
            if trial % 2:
                damaged = good[:offset]  # torn tail
            else:
                flipped = good[offset] ^ 0xFF
                damaged = good[:offset] + bytes([flipped]) + good[offset + 1:]
            delta.write_bytes(damaged)
            context = f"seed={SEED} trial={trial} offset={offset}"
            assert daemon.poll_once() is False, context
            assert service.backend.ingested_through == 2, (
                f"{context}: watermark moved on a torn delta"
            )
            assert [
                (m.pattern, m.frequency) for m in service.backend
            ] == before, f"{context}: torn delta changed served answers"
            rejected = service.stats()["compaction"]["rejected"]
            assert "delta-00000002-00000004.store" in rejected, context

        delta.write_bytes(good)  # repair: new signature, retried
        assert daemon.poll_once() is True
        assert service.backend.ingested_through == 4
        assert "rejected" not in service.stats()["compaction"]

    def test_torn_spool_publish_is_invisible(self, rig):
        """A crash between the sidecar rename and the final store
        rename leaves sidecar + ``.part`` only: no pending delta, no
        fold, and the next flush completes the publish."""
        ingestor, service, daemon, spool = rig
        ingestor.add(BATCH1)
        daemon.poll_once()

        # simulate the torn second publish by hand
        name = "delta-00000002-00000004.store"
        part = spool / (name + ".part")
        part.write_bytes(b"half a store")
        write_delta_meta(spool / name, {"kind": "add"}, source=part)
        assert daemon.pending_deltas() == []
        assert daemon.poll_once() is False
        assert service.backend.ingested_through == 2

    def test_manifest_watermark_never_regresses(
        self, live, fig1_hierarchy, tmp_path
    ):
        """Folding a delta whose sidecar carries an older watermark
        must not move the manifest backwards (monotonic max)."""
        _stamp_manifest(live, {"ingested_through": 9, "retained_from": 3})
        from repro.core.lash import micro_mine

        mined = micro_mine(BATCH1, fig1_hierarchy, PARAMS)
        delta = tmp_path / "stale.store"
        write_store(delta, mined.patterns, mined.vocabulary, delta=True)
        write_delta_meta(
            delta, {"kind": "add", "ingested_through": 2, "retained_from": 1}
        )
        from repro.serve import StoreCompactor

        StoreCompactor(live).compact([delta])
        assert read_manifest(live)["ingest"] == {
            "ingested_through": 9,
            "retained_from": 3,
        }


# ----------------------------------------------------------------------
# applied-archive retention
# ----------------------------------------------------------------------


class TestAppliedRetention:
    def test_sweep_keeps_newest_applied_deltas(self, live, tmp_path):
        spool = tmp_path / "spool"
        ingestor = Ingestor.init(
            tmp_path / "state", live, spool, gamma=PARAMS.gamma,
            lam=PARAMS.lam,
        )
        service = QueryService(open_store(live))
        daemon = CompactionDaemon(
            service, live, spool, interval=3600, applied_retain=2
        )
        try:
            for batch in (BATCH1, BATCH2, BATCH1, BATCH2):
                ingestor.add(batch)
                assert daemon.poll_once() is True
            applied = spool / "applied"
            stores = sorted(
                p.name for p in applied.iterdir() if p.suffix == ".store"
            )
            assert stores == [
                "delta-00000004-00000006.store",
                "delta-00000006-00000008.store",
            ]
            # sidecars of swept deltas were swept with them
            sidecars = sorted(
                p.name
                for p in applied.iterdir()
                if p.name.endswith(".meta.json")
            )
            assert sidecars == [s + ".meta.json" for s in stores]
            assert service.backend.ingested_through == 8
        finally:
            service.backend.close()


# ----------------------------------------------------------------------
# freshness on the serving surface
# ----------------------------------------------------------------------


class TestFreshnessSurface:
    def test_query_and_stats_carry_watermarks(self, rig):
        ingestor, service, daemon, _ = rig
        # before any compaction the base manifest carries the zero stamp
        assert service.query("a")["ingested_through"] == 0
        ingestor.add(BATCH1)
        ingestor.add(BATCH2)
        ingestor.retire(1)
        daemon.poll_once()
        answer = service.query("a")
        assert answer["ingested_through"] == 4
        assert answer["retained_from"] == 1
        count = service.count("a")
        assert count["ingested_through"] == 4
        stats = service.stats()
        assert stats["freshness"] == {
            "ingested_through": 4,
            "retained_from": 1,
        }
        ingest = stats["compaction"]["ingest"]
        assert ingest["applied_deltas"] == 3
        assert ingest["pending_deltas"] == 0

    def test_http_endpoints_and_metrics(self, rig):
        ingestor, service, daemon, _ = rig
        ingestor.add(BATCH1)
        daemon.poll_once()
        server = create_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            base = f"http://127.0.0.1:{server.server_port}"
            with urllib.request.urlopen(
                base + "/query?q=a", timeout=10
            ) as response:
                body = json.loads(response.read())
            assert body["ingested_through"] == 2
            assert body["retained_from"] == 0
            with urllib.request.urlopen(
                base + "/stats", timeout=10
            ) as response:
                stats = json.loads(response.read())
            assert stats["freshness"]["ingested_through"] == 2
            with urllib.request.urlopen(
                base + "/metrics", timeout=10
            ) as response:
                metrics = response.read().decode()
            assert "lash_ingested_through 2" in metrics
            assert "lash_ingest_applied_deltas_total 1" in metrics
            assert "lash_ingest_pending_deltas 0" in metrics
            assert "lash_ingest_lag_seconds" in metrics
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
