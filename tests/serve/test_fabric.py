"""Failure surface of the pipelined, compressed serving fabric.

The multiplexed wire path must be invisible when everything works —
byte-identical answers, same error types — and must degrade the same
way the legacy path does when it breaks: a connection dying
mid-pipeline fails over every in-flight request through the replica
path, a peer that predates the extension silently gets legacy framing,
and a saturated front end answers a typed, retryable busy signal
instead of queueing without bound.
"""

from __future__ import annotations

import gzip
import json
import random
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core import Lash, MiningParams
from repro.errors import ServerBusyError
from repro.hierarchy import Hierarchy
from repro.query import parse_query
from repro.sequence import SequenceDatabase
from repro.serve import QueryService, create_server, open_store
from repro.serve.distributed import ShardServer
from repro.serve.protocol import (
    ALL_FEATURES,
    DEFAULT_COMPRESS_THRESHOLD,
    FEATURE_MULTI,
    FEATURE_MUX,
    FEATURE_ZLIB,
    PROTOCOL_VERSION,
    negotiate_features,
    recv_mux,
    send_mux,
)
from repro.serve.router import ClusterMap, RouterBackend, ServerSpec, ShardClient

NUM_SHARDS = 4

QUERIES = ["? ?", "a ?", "^B +", "a * c", "(a|^B) ?", "!a ^B", "?@2"]


@pytest.fixture(scope="module")
def mined():
    hierarchy = Hierarchy()
    for name, parent in [
        ("A", None), ("B", None), ("a", "A"), ("b", "B"),
        ("c", "A"), ("d", "B"), ("e", None),
    ]:
        hierarchy.add_item(name, parent)
    rng = random.Random(20260808)
    leaves = ["a", "b", "c", "d", "e"]
    database = SequenceDatabase(
        [
            [rng.choice(leaves) for _ in range(rng.randint(1, 6))]
            for _ in range(40)
        ]
    )
    return Lash(MiningParams(sigma=2, gamma=1, lam=3)).mine(
        database, hierarchy
    )


@pytest.fixture(scope="module")
def store_path(mined, tmp_path_factory):
    path = tmp_path_factory.mktemp("fabric") / "patterns.shards"
    mined.to_store(path, shards=NUM_SHARDS)
    return path


@pytest.fixture(scope="module")
def expected(mined, store_path):
    """Single-process ground truth per query."""
    with open_store(store_path) as mono:
        return {
            query: [
                (m.pattern, m.frequency)
                for m in mono.search(parse_query(query))
            ]
            for query in QUERIES
        }


def _cluster_for(servers, num_shards=NUM_SHARDS, full_replica=None):
    specs, placement = [], {}
    entries = list(servers)
    if full_replica is not None:
        entries.append((full_replica, range(num_shards)))
    for server, shards in entries:
        host, port = server.address
        spec = ServerSpec(
            host,
            port,
            http_port=(
                server.http_address[1] if server.http_address else None
            ),
        )
        specs.append(spec)
        for shard in shards:
            placement.setdefault(shard, []).append(spec.key)
    return ClusterMap(specs, num_shards=num_shards, placement=placement)


def _matches(backend, query, **kwargs):
    return [
        (m.pattern, m.frequency) for m in backend.search(query, **kwargs)
    ]


# ----------------------------------------------------------------------
# mux framing + compression (protocol level)
# ----------------------------------------------------------------------


class TestMuxFraming:
    def _pair(self):
        left, right = socket.socketpair()
        left.settimeout(5)
        right.settimeout(5)
        return left, right

    def test_round_trip_out_of_order_ids(self):
        left, right = self._pair()
        try:
            send_mux(left, 7, {"op": "ping"})
            send_mux(left, 3, ["second"])
            rid, value = recv_mux(right)
            assert (rid, value) == (7, {"op": "ping"})
            rid, value = recv_mux(right)
            assert (rid, value) == (3, ["second"])
        finally:
            left.close()
            right.close()

    def test_compresses_above_threshold_only(self):
        big = {"payload": "x" * (4 * DEFAULT_COMPRESS_THRESHOLD)}
        small = {"payload": "y"}
        for value, want_compressed in ((big, True), (small, False)):
            left, right = self._pair()
            try:
                from repro.serve.protocol import WireStats

                sent, received = WireStats(), WireStats()
                send_mux(
                    left, 1, value, DEFAULT_COMPRESS_THRESHOLD, sent
                )
                rid, decoded = recv_mux(right, received)
                assert rid == 1 and decoded == value
                snap = sent.snapshot()
                assert (
                    snap["compressed_frames_sent"] == int(want_compressed)
                )
                if want_compressed:
                    assert snap["wire_bytes_sent"] < snap["raw_bytes_sent"]
                assert (
                    received.snapshot()["compressed_frames_received"]
                    == int(want_compressed)
                )
            finally:
                left.close()
                right.close()

    def test_exactly_threshold_is_not_compressed(self):
        # the contract is strictly-greater-than: a payload of exactly
        # threshold bytes ships raw
        left, right = self._pair()
        try:
            from repro.serve.protocol import WireStats

            value = {"p": "z" * 100}
            # thresholds compare against the payload as encoded for the
            # wire — compact JSON for JSON-representable values
            threshold = len(
                json.dumps(value, separators=(",", ":")).encode("utf-8")
            )
            stats = WireStats()
            send_mux(left, 1, value, threshold, stats)
            _, decoded = recv_mux(right)
            assert decoded == value
            assert stats.snapshot()["compressed_frames_sent"] == 0
        finally:
            left.close()
            right.close()

    def test_bytes_payload_takes_binary_codec(self):
        # JSON cannot carry bytes: such values fall back to the binary
        # value codec, signalled per frame by the codec flag bit
        left, right = self._pair()
        try:
            value = {"blob": b"\x00\xff" * 10}
            send_mux(left, 7, value, None)
            request_id, decoded = recv_mux(right)
            assert request_id == 7
            assert decoded == value
        finally:
            left.close()
            right.close()

    def test_negotiation_requires_mux(self):
        assert negotiate_features(ALL_FEATURES, ALL_FEATURES) == ALL_FEATURES
        assert negotiate_features([FEATURE_ZLIB], ALL_FEATURES) == ()
        assert negotiate_features(ALL_FEATURES, [FEATURE_MUX]) == (
            FEATURE_MUX,
        )
        assert negotiate_features(
            [FEATURE_MUX, FEATURE_MULTI], ALL_FEATURES
        ) == (FEATURE_MUX, FEATURE_MULTI)


# ----------------------------------------------------------------------
# mixed-version handshake fallback
# ----------------------------------------------------------------------


class TestMixedVersions:
    def test_new_client_against_old_server(self, store_path, expected):
        # mux=False makes the server behave like a pre-extension build:
        # it answers the hello with a plain unknown-op error and the
        # client silently continues in legacy framing
        with ShardServer(store_path, http_port=None, mux=False) as server:
            host, port = server.address
            client = ShardClient(host, port)
            try:
                answer = client.request(
                    {"v": PROTOCOL_VERSION, "op": "ping"}, timeout=5
                )
                assert answer["ok"] is True
                assert client.mode == "legacy"
                assert client.features == ()
            finally:
                client.close()
            cluster = _cluster_for([(server, range(NUM_SHARDS))])
            router = RouterBackend(cluster, deadline=5)
            try:
                for query in QUERIES:
                    got = _matches(router, parse_query(query))
                    assert got == expected[query], query
                    assert router.take_partial() is None
            finally:
                router.close()

    def test_old_client_against_new_server(self, store_path, expected):
        # wire="legacy" never sends hello — exactly what an old client
        # looks like on the wire; the server stays in legacy framing
        # for that connection
        with ShardServer(store_path, http_port=None) as server:
            host, port = server.address
            client = ShardClient(host, port, wire="legacy")
            try:
                answer = client.request(
                    {"v": PROTOCOL_VERSION, "op": "ping"}, timeout=5
                )
                assert answer["ok"] is True
                assert client.mode == "legacy"
            finally:
                client.close()
            cluster = _cluster_for([(server, range(NUM_SHARDS))])
            router = RouterBackend(cluster, deadline=5, wire="legacy")
            try:
                for query in QUERIES:
                    assert (
                        _matches(router, parse_query(query))
                        == expected[query]
                    ), query
            finally:
                router.close()

    def test_mux_negotiated_and_identical(self, store_path, expected):
        with ShardServer(store_path, http_port=None) as server:
            cluster = _cluster_for([(server, range(NUM_SHARDS))])
            router = RouterBackend(cluster, deadline=5)
            try:
                for query in QUERIES:
                    assert (
                        _matches(router, parse_query(query))
                        == expected[query]
                    ), query
                modes = {
                    client.mode for client in router._clients.values()
                }
                assert modes == {"mux"}
                wire = router.describe()["wire"]
                assert wire["frames_sent"] > 0
                assert wire["frames_received"] > 0
            finally:
                router.close()


# ----------------------------------------------------------------------
# end-to-end compression
# ----------------------------------------------------------------------


class TestWireCompression:
    def test_large_responses_compress_small_ones_dont(
        self, store_path, expected
    ):
        with ShardServer(store_path, http_port=None) as server:
            host, port = server.address
            client = ShardClient(host, port)
            try:
                # ping answers are tiny: never compressed
                client.request(
                    {"v": PROTOCOL_VERSION, "op": "ping"}, timeout=5
                )
                assert FEATURE_ZLIB in client.features
                baseline = client.wire_stats.snapshot()
                assert baseline["compressed_frames_received"] == 0
                # the full "? ?" result set is well past the threshold
                response = client.request(
                    {
                        "v": PROTOCOL_VERSION,
                        "op": "search",
                        "tokens": [["any"], ["any"]],
                        "shards": None,
                        "limit": None,
                        "min_freq": None,
                    },
                    timeout=5,
                )
                got = [
                    (tuple(names), freq)
                    for _, freq, names in response["records"]
                ]
                assert got == expected["? ?"]
                snap = client.wire_stats.snapshot()
                assert snap["compressed_frames_received"] >= 1
                assert (
                    snap["wire_bytes_received"] < snap["raw_bytes_received"]
                )
                assert server.wire_stats.snapshot()[
                    "compressed_frames_sent"
                ] >= 1
            finally:
                client.close()

    def test_compression_off_still_muxes(self, store_path, expected):
        with ShardServer(
            store_path, http_port=None, compress=False
        ) as server:
            host, port = server.address
            client = ShardClient(host, port)
            try:
                client.request(
                    {"v": PROTOCOL_VERSION, "op": "ping"}, timeout=5
                )
                assert client.mode == "mux"
                assert FEATURE_ZLIB not in client.features
                response = client.request(
                    {
                        "v": PROTOCOL_VERSION,
                        "op": "search",
                        "tokens": [["any"], ["any"]],
                        "shards": None,
                        "limit": None,
                        "min_freq": None,
                    },
                    timeout=5,
                )
                got = [
                    (tuple(names), freq)
                    for _, freq, names in response["records"]
                ]
                assert got == expected["? ?"]
                snap = client.wire_stats.snapshot()
                assert snap["compressed_frames_received"] == 0
                assert (
                    snap["wire_bytes_received"]
                    >= snap["raw_bytes_received"]
                )
            finally:
                client.close()


# ----------------------------------------------------------------------
# kill mid-pipeline
# ----------------------------------------------------------------------


class TestKillMidPipeline:
    def test_all_in_flight_requests_fail_promptly(self, store_path):
        """Killing the server fails every request parked in the
        pipeline's in-flight table — no waiter is left hanging for its
        timeout."""
        with ShardServer(store_path, http_port=None) as server:
            host, port = server.address
        # server stopped: now race many requests against a client whose
        # connection just died
        client = ShardClient(host, port)
        with pytest.raises((OSError, ConnectionError)):
            client.request({"v": PROTOCOL_VERSION, "op": "ping"}, timeout=2)
        client.close()

    def test_concurrent_queries_fail_over_to_replica(
        self, store_path, expected
    ):
        """A primary killed with a full pipeline: every in-flight
        request fails over through the normal replica-retry path and
        the merged answers stay byte-identical."""
        primary = ShardServer(store_path, http_port=None).start()
        replica = ShardServer(store_path, http_port=None).start()
        cluster = _cluster_for(
            [(primary, range(NUM_SHARDS))], full_replica=replica
        )
        router = RouterBackend(cluster, deadline=10, pipeline_depth=64)
        results: dict[tuple, list] = {}
        errors: list[Exception] = []
        lock = threading.Lock()

        def worker(index: int) -> None:
            for round_ in range(6):
                query = QUERIES[(index + round_) % len(QUERIES)]
                try:
                    got = _matches(router, parse_query(query))
                    partial = router.take_partial()
                except Exception as exc:  # noqa: BLE001 - recorded
                    with lock:
                        errors.append(exc)
                    return
                with lock:
                    results[(index, round_, query)] = (got, partial)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(8)
        ]
        killer = threading.Timer(0.05, primary.stop)
        try:
            for thread in threads:
                thread.start()
            killer.start()
            for thread in threads:
                thread.join(timeout=30)
            assert not errors, errors
            assert len(results) == 8 * 6
            for (_, _, query), (got, partial) in results.items():
                assert got == expected[query], query
                # with a full replica alive, nothing may degrade
                assert partial is None
        finally:
            killer.cancel()
            router.close()
            primary.stop()
            replica.stop()


# ----------------------------------------------------------------------
# batched scatter (multi_search + service prefetch)
# ----------------------------------------------------------------------


class TestBatchedScatter:
    def test_multi_search_op_matches_per_query(self, store_path, expected):
        with ShardServer(store_path, http_port=None) as server:
            host, port = server.address
            client = ShardClient(host, port)
            try:
                queries = [
                    {
                        "tokens": [["any"], ["any"]],
                        "limit": None,
                        "min_freq": None,
                    },
                    {"tokens": [["item", "zzz"]], "limit": None,
                     "min_freq": None},
                ]
                response = client.request(
                    {
                        "v": PROTOCOL_VERSION,
                        "op": "multi_search",
                        "shards": None,
                        "queries": queries,
                    },
                    timeout=5,
                )
                results = response["results"]
                assert len(results) == 2
                got = [
                    (tuple(names), freq)
                    for _, freq, names in results[0]["records"]
                ]
                assert got == expected["? ?"]
                # the bad query fails alone, with its original type
                assert results[1]["error"]["type"] == "UnknownItemError"
            finally:
                client.close()

    def test_service_batch_identical_to_mono(self, store_path):
        queries = QUERIES + ["zzz not-a-query ((", "a ?"]
        with open_store(store_path) as mono:
            mono_service = QueryService(mono)
            want = mono_service.batch(queries, limit=5)
        with ShardServer(store_path, http_port=None) as server:
            cluster = _cluster_for([(server, range(NUM_SHARDS))])
            router = RouterBackend(cluster, deadline=5)
            try:
                service = QueryService(router)
                got = service.batch(queries, limit=5)
                assert len(got) == len(want)
                for g, w in zip(got, want):
                    # cost estimates legitimately differ between a local
                    # store and a cluster-extrapolated slice estimate
                    g = {k: v for k, v in g.items() if k != "estimated_cost"}
                    w = {k: v for k, v in w.items() if k != "estimated_cost"}
                    assert g == w
                # the batch actually used one multi_search scatter
                assert router.describe()["pipeline"]["batched_scatter"]
            finally:
                router.close()

    def test_batch_against_old_cluster_falls_back(self, store_path):
        class OldShardServer(ShardServer):
            """A pre-extension build: no handshake, no multi_search."""

            def dispatch(self, request):
                if (
                    isinstance(request, dict)
                    and request.get("op") == "multi_search"
                ):
                    request = {**request, "op": "multi_search_unknown"}
                return super().dispatch(request)

        queries = QUERIES[:4]
        with open_store(store_path) as mono:
            want = [
                {
                    k: v
                    for k, v in entry.items()
                    if k != "estimated_cost"
                }
                for entry in QueryService(mono).batch(queries, limit=5)
            ]
        with OldShardServer(store_path, http_port=None, mux=False) as server:
            cluster = _cluster_for([(server, range(NUM_SHARDS))])
            router = RouterBackend(cluster, deadline=5)
            try:
                service = QueryService(router)
                got = [
                    {
                        k: v
                        for k, v in entry.items()
                        if k != "estimated_cost"
                    }
                    for entry in service.batch(queries, limit=5)
                ]
                assert got == want
                # batching disabled itself after the first refusal
                assert router.describe()["pipeline"]["batched_scatter"] is (
                    False
                )
            finally:
                router.close()


# ----------------------------------------------------------------------
# saturation / backpressure
# ----------------------------------------------------------------------


class TestBackpressure:
    def test_shard_server_sheds_with_busy_error(self, store_path):
        with ShardServer(
            store_path, http_port=None, workers=1, max_in_flight=1
        ) as server:
            host, port = server.address
            client = ShardClient(host, port, wire="legacy")
            try:
                assert server._acquire_slot()  # pin the only slot
                try:
                    with pytest.raises(ServerBusyError) as err:
                        client.request(
                            {"v": PROTOCOL_VERSION, "op": "ping"}, timeout=5
                        )
                    assert err.value.retry_after >= 1
                finally:
                    server._release_slot()
                # slot free again: the same connection keeps working
                answer = client.request(
                    {"v": PROTOCOL_VERSION, "op": "ping"}, timeout=5
                )
                assert answer["ok"] is True
                status = client.request(
                    {"v": PROTOCOL_VERSION, "op": "status"}, timeout=5
                )
                assert status["frontend"]["rejected"] >= 1
                assert status["frontend"]["workers"] == 1
            finally:
                client.close()

    def test_router_retries_busy_server_on_replica(
        self, store_path, expected
    ):
        primary = ShardServer(
            store_path, http_port=None, max_in_flight=1
        ).start()
        replica = ShardServer(store_path, http_port=None).start()
        try:
            cluster = _cluster_for(
                [(primary, range(NUM_SHARDS))], full_replica=replica
            )
            router = RouterBackend(cluster, deadline=5)
            try:
                assert primary._acquire_slot()  # saturate the primary
                try:
                    got = _matches(router, parse_query("? ?"))
                finally:
                    primary._release_slot()
                assert got == expected["? ?"]
                assert router.take_partial() is None
                info = router.describe()
                assert info["busy_sheds"] >= 1
                # busy is not dead: the primary stays in the rotation
                primary_key = cluster.replicas(0)[0]
                assert router.healthy_servers()[primary_key] is True
            finally:
                router.close()
        finally:
            primary.stop()
            replica.stop()

    @staticmethod
    def _get(url, timeout=5):
        """Fetch honoring 503 + Retry-After, like a real client: the
        slot is only released after the previous response's bytes hit
        the wire, so back-to-back requests can legitimately be shed."""
        for _ in range(20):
            try:
                with urllib.request.urlopen(url, timeout=timeout) as resp:
                    return resp.read()
            except urllib.error.HTTPError as exc:
                if exc.code != 503:
                    raise
                time.sleep(0.05)
        raise AssertionError(f"{url} still busy after retries")

    def test_http_saturation_answers_503_with_retry_after(
        self, store_path
    ):
        with open_store(store_path) as store:
            service = QueryService(store)
            server = create_server(
                service, port=0, workers=1, max_in_flight=1
            )
            thread = threading.Thread(
                target=server.serve_forever, daemon=True
            )
            thread.start()
            base = "http://{}:{}".format(*server.server_address[:2])
            try:
                assert server._acquire_slot()  # pin the only slot
                try:
                    with pytest.raises(urllib.error.HTTPError) as err:
                        urllib.request.urlopen(f"{base}/healthz", timeout=5)
                    assert err.value.code == 503
                    assert err.value.headers["Retry-After"] == "1"
                finally:
                    server._release_slot()
                # drained: served again, and the shed shows on /metrics
                metrics = self._get(f"{base}/metrics").decode()
                assert "lash_http_rejected_total 1" in metrics
                assert "lash_http_in_flight 1" in metrics  # this request
                assert "lash_http_max_in_flight 1" in metrics
                stats = json.loads(self._get(f"{base}/stats"))
                assert stats["frontend"]["rejected"] == 1
            finally:
                server.shutdown()
                server.server_close()
                thread.join(timeout=5)

    def test_http_gzip_round_trip(self, store_path):
        with open_store(store_path) as store:
            service = QueryService(store)
            server = create_server(service, port=0)
            thread = threading.Thread(
                target=server.serve_forever, daemon=True
            )
            thread.start()
            base = "http://{}:{}".format(*server.server_address[:2])
            try:
                url = f"{base}/query?q=%3F+%3F&limit=100"
                with urllib.request.urlopen(url, timeout=5) as resp:
                    plain = resp.read()
                    assert resp.headers.get("Content-Encoding") is None
                request = urllib.request.Request(
                    url, headers={"Accept-Encoding": "gzip"}
                )
                with urllib.request.urlopen(request, timeout=5) as resp:
                    assert resp.headers["Content-Encoding"] == "gzip"
                    body = resp.read()
                assert len(body) < len(plain)
                assert gzip.decompress(body) == plain
                assert server.frontend_stats()["gzipped_responses"] == 1
            finally:
                server.shutdown()
                server.server_close()
                thread.join(timeout=5)


# ----------------------------------------------------------------------
# pipelining under concurrency (healthy path)
# ----------------------------------------------------------------------


class TestPipelining:
    def test_interleaved_responses_route_to_their_requests(
        self, store_path, expected
    ):
        """Many threads share one mux connection; every answer must
        come back to the thread that asked."""
        with ShardServer(store_path, http_port=None) as server:
            host, port = server.address
            client = ShardClient(host, port, pipeline_depth=16)
            failures: list = []

            def worker(index: int) -> None:
                query = QUERIES[index % len(QUERIES)]
                tokens = parse_query(query)
                from repro.serve.protocol import encode_tokens

                for _ in range(5):
                    try:
                        response = client.request(
                            {
                                "v": PROTOCOL_VERSION,
                                "op": "search",
                                "tokens": encode_tokens(tokens),
                                "shards": None,
                                "limit": None,
                                "min_freq": None,
                            },
                            timeout=10,
                        )
                        got = [
                            (tuple(names), freq)
                            for _, freq, names in response["records"]
                        ]
                        if got != expected[query]:
                            failures.append((query, "mismatch"))
                    except Exception as exc:  # noqa: BLE001 - recorded
                        failures.append((query, exc))

            threads = [
                threading.Thread(target=worker, args=(i,))
                for i in range(12)
            ]
            try:
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=30)
                assert not failures, failures[:3]
                assert client.mode == "mux"
                snap = client.wire_stats.snapshot()
                assert snap["frames_sent"] == 12 * 5
                assert snap["frames_received"] == 12 * 5
            finally:
                client.close()
