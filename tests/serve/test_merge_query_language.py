"""Merged stores answer the expanded query language exactly like a
rebuild.

PR 2 proved ``merge_stores`` byte-equal to a full rebuild for σ=1 runs;
these tests pin the *query-level* consequence for the token kinds added
after that proof — disjunctions and frequency floors (whose answers
additionally depend on the merged vocabulary's summed item
frequencies), negations and bounded gaps, and the per-query σ override
(which cuts the merged store's summed pattern frequencies)."""

from __future__ import annotations

import random

import pytest

from repro.core import Lash, MiningParams
from repro.sequence import SequenceDatabase
from repro.serve import merge_stores, open_store

from tests.conftest import paper_hierarchy

QUERIES = [
    "(a|c)",
    "(a|^B) ?",
    "(^B|^D)",
    "(b1|b2|b3)@1",
    "?@2",
    "^B@2 *",
    "a (c|^B)@1",
    "(a|e|f) +",
    "?@3 ?@1",
    "a !c",
    "!^B ?",
    "a !(c|^D) *",
    "a *{0,2}",
    "*{1,2} c",
    "^B *{0,1} !a",
    "!c !^B",
]

#: (query, σ override) pairs: the override must cut the merged ranking
#: exactly where it cuts the rebuilt one (frequencies are sums there)
SIGMA_QUERIES = [("+", 2), ("a *", 3), ("(a|^B) ?", 2), ("a !c *", 2)]


def _mine(sequences, hierarchy):
    return Lash(MiningParams(sigma=1, gamma=1, lam=3)).mine(
        SequenceDatabase(sequences), hierarchy
    )


CORPUS_A = [
    ["a", "b1", "a", "b1"],
    ["a", "b3", "c", "c", "b2"],
    ["a", "c"],
]
CORPUS_B = [
    ["b11", "a", "e", "a"],
    ["a", "b12", "d1", "c"],
    ["b13", "f", "d2"],
    ["a", "c"],
]


def _answers(path, query, min_freq=None):
    with open_store(path) as store:
        return [
            (m.pattern, m.frequency)
            for m in store.search(query, min_freq=min_freq)
        ]


@pytest.mark.parametrize("shards", [None, 3])
def test_merged_equals_rebuilt_on_new_token_kinds(tmp_path, shards):
    hierarchy = paper_hierarchy()
    a_path, b_path = tmp_path / "a.store", tmp_path / "b.store"
    _mine(CORPUS_A, hierarchy).to_store(a_path)
    _mine(CORPUS_B, hierarchy).to_store(b_path)
    merged = tmp_path / "merged.out"
    merge_stores([a_path, b_path], merged, shards=shards)
    rebuilt = tmp_path / "rebuilt.out"
    _mine(CORPUS_A + CORPUS_B, hierarchy).to_store(
        rebuilt, shards=shards
    )
    for query in QUERIES:
        assert _answers(merged, query) == _answers(rebuilt, query), query
    for query, min_freq in SIGMA_QUERIES:
        assert _answers(merged, query, min_freq) == _answers(
            rebuilt, query, min_freq
        ), (query, min_freq)


def test_merged_sigma_override_sees_summed_pattern_frequencies(tmp_path):
    """A σ override that neither part clears on its own must clear on
    the merged store: pattern frequencies sum across sources."""
    hierarchy = paper_hierarchy()
    part = [["e", "a"], ["e", "c"]]
    a_path, b_path = tmp_path / "sa.store", tmp_path / "sb.store"
    _mine(part, hierarchy).to_store(a_path)
    _mine(part, hierarchy).to_store(b_path)
    part_freq = dict(_answers(a_path, "e +"))[("e", "a")]
    floor = part_freq + 1
    assert _answers(a_path, "e +", min_freq=floor) == []
    merged = tmp_path / "smerged.store"
    merge_stores([a_path, b_path], merged)
    assert (("e", "a"), 2 * part_freq) in _answers(
        merged, "e +", min_freq=floor
    )


def test_merged_floor_sees_summed_item_frequencies(tmp_path):
    """A floor that neither part clears on its own must clear on the
    merged store: item frequencies sum across sources."""
    hierarchy = paper_hierarchy()
    part_a = [["e", "a"], ["e", "c"]]
    part_b = [["e", "f"], ["e", "b1"]]
    a_path, b_path = tmp_path / "fa.store", tmp_path / "fb.store"
    _mine(part_a, hierarchy).to_store(a_path)
    _mine(part_b, hierarchy).to_store(b_path)
    with open_store(a_path) as store:
        vocabulary = store.vocabulary
        part_freq = vocabulary.frequency_of("e")
    merged = tmp_path / "fmerged.store"
    merge_stores([a_path, b_path], merged)
    with open_store(merged) as store:
        merged_freq = store.vocabulary.frequency_of("e")
        assert merged_freq == 2 * part_freq
        # the floor between the two values admits 'e' only post-merge
        floor = part_freq + 1
        assert store.search(f"e@{floor} ?")
    assert not _answers(a_path, f"e@{floor} ?")


@pytest.mark.parametrize("seed", range(3))
def test_randomized_merge_answers_match_rebuild(tmp_path, seed):
    rng = random.Random(seed)
    hierarchy = paper_hierarchy()
    items = ["a", "b1", "b2", "b3", "b11", "c", "e", "f", "d1", "d2"]
    corpus = [
        [rng.choice(items) for _ in range(rng.randint(1, 5))]
        for _ in range(rng.randint(6, 16))
    ]
    cut = rng.randint(1, len(corpus) - 1)
    part_paths = []
    for label, part in (("a", corpus[:cut]), ("b", corpus[cut:])):
        path = tmp_path / f"{label}{seed}.store"
        _mine(part, hierarchy).to_store(path)
        part_paths.append(path)
    merged = tmp_path / f"merged{seed}.store"
    merge_stores(part_paths, merged)
    rebuilt = tmp_path / f"rebuilt{seed}.store"
    _mine(corpus, hierarchy).to_store(rebuilt)
    queries = QUERIES + [
        f"({rng.choice(items)}|^B)@{rng.randint(0, 4)}" for _ in range(4)
    ]
    for query in queries:
        assert _answers(merged, query) == _answers(rebuilt, query), (
            f"seed={seed} query={query!r}"
        )
