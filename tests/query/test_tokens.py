"""Query language parsing (repro.query.tokens)."""

from __future__ import annotations

import pytest

from repro.errors import InvalidParameterError
from repro.query import (
    AnyToken,
    FloorToken,
    ItemToken,
    OneOfToken,
    PlusToken,
    Q,
    SpanToken,
    UnderToken,
    parse_query,
)
from repro.query.tokens import normalize_query


def test_parse_plain_items():
    assert parse_query("a b c") == (
        ItemToken("a"),
        ItemToken("b"),
        ItemToken("c"),
    )


def test_parse_wildcards():
    assert parse_query("? * +") == (AnyToken(), SpanToken(), PlusToken())


def test_parse_under():
    assert parse_query("^NOUN lives") == (
        UnderToken("NOUN"),
        ItemToken("lives"),
    )


def test_parse_mixed_whitespace():
    assert parse_query("  the   ^ADJ\t? ") == (
        ItemToken("the"),
        UnderToken("ADJ"),
        AnyToken(),
    )


def test_parse_empty_rejected():
    with pytest.raises(InvalidParameterError):
        parse_query("   ")


def test_parse_bare_caret_rejected():
    with pytest.raises(InvalidParameterError):
        parse_query("the ^ house")


def test_q_constructors_equal_parsed():
    assert (Q.item("x"), Q.under("y"), Q.any(), Q.plus(), Q.span()) == (
        parse_query("x ^y ? + *")
    )


def test_q_escapes_special_names():
    """Items literally named '?' are only expressible through Q."""
    token = Q.item("?")
    assert token == ItemToken("?")
    assert parse_query("?") != (token,)


def test_tokens_hashable_and_comparable():
    assert len({Q.any(), Q.any(), Q.span(), Q.plus()}) == 3
    assert Q.under("x") != Q.item("x")


def test_normalize_accepts_string_token_and_sequence():
    assert normalize_query("a ?") == (ItemToken("a"), AnyToken())
    assert normalize_query(Q.any()) == (AnyToken(),)
    assert normalize_query([Q.item("a"), Q.span()]) == (
        ItemToken("a"),
        SpanToken(),
    )


def test_normalize_rejects_empty_sequence():
    with pytest.raises(InvalidParameterError):
        normalize_query([])


def test_normalize_rejects_non_tokens():
    with pytest.raises(InvalidParameterError):
        normalize_query(["a", "b"])  # raw strings are not tokens


def test_token_reprs_roundtrip_visually():
    assert repr(Q.under("ADJ")) == "UnderToken('ADJ')"
    assert repr(Q.item("the")) == "ItemToken('the')"
    assert repr(Q.any()) == "AnyToken()"
    assert repr(Q.span()) == "SpanToken()"
    assert repr(Q.plus()) == "PlusToken()"
    assert repr(Q.oneof("a", Q.under("B"))) == (
        "OneOfToken(ItemToken('a'), UnderToken('B'))"
    )
    assert repr(Q.floor("a", 3)) == "FloorToken(ItemToken('a'), 3)"


class TestDisjunction:
    def test_parse(self):
        assert parse_query("(a|b|^C)") == (
            Q.oneof("a", "b", Q.under("C")),
        )

    def test_choice_order_is_canonical(self):
        assert parse_query("(b|a)") == parse_query("(a|b)")
        assert Q.oneof("b", "a") == Q.oneof("a", "b")
        assert Q.oneof("a", "a", "b") == Q.oneof("a", "b")

    def test_single_choice_allowed(self):
        assert parse_query("(a)") == (OneOfToken((ItemToken("a"),)),)

    @pytest.mark.parametrize(
        "bad", ["()", "(a|", "(a||b)", "(|a)", "(^|a)", "(?|a)", "(*|a)"]
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(InvalidParameterError):
            parse_query(bad)

    def test_choices_must_be_item_or_under(self):
        with pytest.raises(InvalidParameterError):
            OneOfToken((AnyToken(),))
        with pytest.raises(InvalidParameterError):
            Q.oneof()


class TestFloor:
    def test_parse_forms(self):
        assert parse_query("a@3 ^B@2 ?@1 (a|b)@4") == (
            Q.floor("a", 3),
            Q.floor(Q.under("B"), 2),
            Q.floor(Q.any(), 1),
            Q.floor(Q.oneof("a", "b"), 4),
        )

    def test_floor_zero_parses(self):
        assert parse_query("a@0") == (FloorToken(ItemToken("a"), 0),)

    @pytest.mark.parametrize("bad", ["*@3", "+@3", "@3", "a@3@4"])
    def test_malformed_rejected(self, bad):
        with pytest.raises(InvalidParameterError):
            parse_query(bad)

    def test_non_numeric_suffix_stays_an_item_name(self):
        """Only '@digits' is floor syntax; 'user@host' is still an item."""
        assert parse_query("user@host") == (ItemToken("user@host"),)

    def test_non_ascii_digits_are_not_floor_syntax(self):
        """'³'.isdigit() is True but int('³') raises — such tails must
        parse as item names, not escape as a bare ValueError."""
        assert parse_query("a@³") == (ItemToken("a@³"),)
        assert parse_query("a@١٢") == (ItemToken("a@١٢"),)

    def test_negative_or_non_int_floor_rejected(self):
        with pytest.raises(InvalidParameterError):
            Q.floor("a", -1)
        with pytest.raises(InvalidParameterError):
            FloorToken(ItemToken("a"), True)

    def test_floor_on_gap_or_floor_rejected(self):
        with pytest.raises(InvalidParameterError):
            FloorToken(SpanToken(), 1)
        with pytest.raises(InvalidParameterError):
            FloorToken(PlusToken(), 1)
        with pytest.raises(InvalidParameterError):
            FloorToken(FloorToken(ItemToken("a"), 1), 2)


def test_normalize_rejects_empty_and_blank_strings():
    for empty in ["", "   ", "\t\n"]:
        with pytest.raises(InvalidParameterError):
            normalize_query(empty)


class TestCanonicalization:
    """``normalize_query`` rewrites semantic no-ops away, so equivalent
    spellings share one compiled form (and one service cache entry)."""

    def test_floor_zero_rewritten_to_inner(self):
        assert normalize_query("a@0 *") == normalize_query("a *")
        assert normalize_query("^B@0") == (UnderToken("B"),)
        assert normalize_query("?@0") == (AnyToken(),)
        assert normalize_query("(a|b)@0") == (
            OneOfToken((ItemToken("a"), ItemToken("b"))),
        )

    def test_floor_zero_rewritten_from_token_sequences(self):
        assert normalize_query([Q.floor("a", 0), Q.span()]) == (
            ItemToken("a"),
            SpanToken(),
        )
        assert normalize_query(Q.floor(Q.under("B"), 0)) == (
            UnderToken("B"),
        )

    def test_positive_floor_preserved(self):
        assert normalize_query("a@1 *") == (
            FloorToken(ItemToken("a"), 1),
            SpanToken(),
        )

    def test_parse_still_keeps_floor_zero(self):
        """The rewrite is normalize-time policy; the parser stays a
        faithful reading of the string."""
        assert parse_query("a@0") == (FloorToken(ItemToken("a"), 0),)
