"""Query language parsing (repro.query.tokens)."""

from __future__ import annotations

import pytest

from repro.errors import InvalidParameterError
from repro.query import (
    AnyToken,
    FloorToken,
    GapToken,
    ItemToken,
    NotToken,
    OneOfToken,
    PlusToken,
    Q,
    SpanToken,
    UnderToken,
    parse_query,
)
from repro.query.tokens import is_negation_only, normalize_query


def test_parse_plain_items():
    assert parse_query("a b c") == (
        ItemToken("a"),
        ItemToken("b"),
        ItemToken("c"),
    )


def test_parse_wildcards():
    assert parse_query("? * +") == (AnyToken(), SpanToken(), PlusToken())


def test_parse_under():
    assert parse_query("^NOUN lives") == (
        UnderToken("NOUN"),
        ItemToken("lives"),
    )


def test_parse_mixed_whitespace():
    assert parse_query("  the   ^ADJ\t? ") == (
        ItemToken("the"),
        UnderToken("ADJ"),
        AnyToken(),
    )


def test_parse_empty_rejected():
    with pytest.raises(InvalidParameterError):
        parse_query("   ")


def test_parse_bare_caret_rejected():
    with pytest.raises(InvalidParameterError):
        parse_query("the ^ house")


def test_q_constructors_equal_parsed():
    assert (Q.item("x"), Q.under("y"), Q.any(), Q.plus(), Q.span()) == (
        parse_query("x ^y ? + *")
    )


def test_q_escapes_special_names():
    """Items literally named '?' are only expressible through Q."""
    token = Q.item("?")
    assert token == ItemToken("?")
    assert parse_query("?") != (token,)


def test_tokens_hashable_and_comparable():
    assert len({Q.any(), Q.any(), Q.span(), Q.plus()}) == 3
    assert Q.under("x") != Q.item("x")


def test_normalize_accepts_string_token_and_sequence():
    assert normalize_query("a ?") == (ItemToken("a"), AnyToken())
    assert normalize_query(Q.any()) == (AnyToken(),)
    assert normalize_query([Q.item("a"), Q.span()]) == (
        ItemToken("a"),
        SpanToken(),
    )


def test_normalize_rejects_empty_sequence():
    with pytest.raises(InvalidParameterError):
        normalize_query([])


def test_normalize_rejects_non_tokens():
    with pytest.raises(InvalidParameterError):
        normalize_query(["a", "b"])  # raw strings are not tokens


def test_token_reprs_roundtrip_visually():
    assert repr(Q.under("ADJ")) == "UnderToken('ADJ')"
    assert repr(Q.item("the")) == "ItemToken('the')"
    assert repr(Q.any()) == "AnyToken()"
    assert repr(Q.span()) == "SpanToken()"
    assert repr(Q.plus()) == "PlusToken()"
    assert repr(Q.oneof("a", Q.under("B"))) == (
        "OneOfToken(ItemToken('a'), UnderToken('B'))"
    )
    assert repr(Q.floor("a", 3)) == "FloorToken(ItemToken('a'), 3)"


class TestDisjunction:
    def test_parse(self):
        assert parse_query("(a|b|^C)") == (
            Q.oneof("a", "b", Q.under("C")),
        )

    def test_choice_order_is_canonical(self):
        assert parse_query("(b|a)") == parse_query("(a|b)")
        assert Q.oneof("b", "a") == Q.oneof("a", "b")
        assert Q.oneof("a", "a", "b") == Q.oneof("a", "b")

    def test_single_choice_allowed(self):
        assert parse_query("(a)") == (OneOfToken((ItemToken("a"),)),)

    @pytest.mark.parametrize(
        "bad", ["()", "(a|", "(a||b)", "(|a)", "(^|a)", "(?|a)", "(*|a)"]
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(InvalidParameterError):
            parse_query(bad)

    def test_choices_must_be_item_or_under(self):
        with pytest.raises(InvalidParameterError):
            OneOfToken((AnyToken(),))
        with pytest.raises(InvalidParameterError):
            Q.oneof()


class TestFloor:
    def test_parse_forms(self):
        assert parse_query("a@3 ^B@2 ?@1 (a|b)@4") == (
            Q.floor("a", 3),
            Q.floor(Q.under("B"), 2),
            Q.floor(Q.any(), 1),
            Q.floor(Q.oneof("a", "b"), 4),
        )

    def test_floor_zero_parses(self):
        assert parse_query("a@0") == (FloorToken(ItemToken("a"), 0),)

    @pytest.mark.parametrize("bad", ["*@3", "+@3", "@3", "a@3@4"])
    def test_malformed_rejected(self, bad):
        with pytest.raises(InvalidParameterError):
            parse_query(bad)

    def test_non_numeric_suffix_stays_an_item_name(self):
        """Only '@digits' is floor syntax; 'user@host' is still an item."""
        assert parse_query("user@host") == (ItemToken("user@host"),)

    def test_non_ascii_digits_are_not_floor_syntax(self):
        """'³'.isdigit() is True but int('³') raises — such tails must
        parse as item names, not escape as a bare ValueError."""
        assert parse_query("a@³") == (ItemToken("a@³"),)
        assert parse_query("a@١٢") == (ItemToken("a@١٢"),)

    def test_negative_or_non_int_floor_rejected(self):
        with pytest.raises(InvalidParameterError):
            Q.floor("a", -1)
        with pytest.raises(InvalidParameterError):
            FloorToken(ItemToken("a"), True)

    def test_floor_on_gap_or_floor_rejected(self):
        with pytest.raises(InvalidParameterError):
            FloorToken(SpanToken(), 1)
        with pytest.raises(InvalidParameterError):
            FloorToken(PlusToken(), 1)
        with pytest.raises(InvalidParameterError):
            FloorToken(FloorToken(ItemToken("a"), 1), 2)


class TestGapParsing:
    def test_bounded_forms(self):
        assert parse_query("*{0,3} *{2,2} *{1,}") == (
            GapToken(0, 3),
            GapToken(2, 2),
            GapToken(1, None),
        )

    def test_q_constructor(self):
        assert Q.gap(1, 3) == GapToken(1, 3)
        assert Q.gap(2) == GapToken(2, None)

    @pytest.mark.parametrize(
        "bad", ["*{", "*{}", "*{1}", "*{,2}", "*{1,2", "*{a,b}", "*{1,2}x"]
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(InvalidParameterError):
            parse_query(bad)

    def test_inverted_or_negative_bounds_rejected(self):
        with pytest.raises(InvalidParameterError):
            parse_query("*{3,1}")
        with pytest.raises(InvalidParameterError):
            GapToken(-1, 2)
        with pytest.raises(InvalidParameterError):
            GapToken(True, 2)

    def test_non_integer_bounds_rejected(self):
        # only the upper bound may be None (unbounded)
        with pytest.raises(InvalidParameterError):
            GapToken(None, 2)
        with pytest.raises(InvalidParameterError):
            Q.gap("1", 2)
        with pytest.raises(InvalidParameterError):
            GapToken(1, "2")

    def test_floor_on_gap_rejected(self):
        with pytest.raises(InvalidParameterError):
            parse_query("*{1,2}@3")

    def test_repr(self):
        assert repr(Q.gap(1, 3)) == "GapToken(1, 3)"
        assert repr(Q.gap(2)) == "GapToken(2, None)"


class TestNegationParsing:
    def test_forms(self):
        assert parse_query("!a !^B !(a|^B)") == (
            NotToken(ItemToken("a")),
            NotToken(UnderToken("B")),
            NotToken(OneOfToken((ItemToken("a"), UnderToken("B")))),
        )

    def test_q_constructor(self):
        assert Q.not_("a") == NotToken(ItemToken("a"))
        assert Q.not_(Q.under("B")) == NotToken(UnderToken("B"))

    @pytest.mark.parametrize("bad", ["!", "!?", "!*", "!+", "!!a", "!*{1,2}"])
    def test_non_item_binding_inner_rejected(self, bad):
        with pytest.raises(InvalidParameterError):
            parse_query(bad)

    def test_floor_on_negation_parses(self):
        # `!a@3`: the floor makes the complement a concrete candidate
        # set, so — unlike a bare negation — it is a positive token
        assert parse_query("!a@3") == (
            FloorToken(NotToken(ItemToken("a")), 3),
        )
        assert parse_query("!^B@2") == (
            FloorToken(NotToken(UnderToken("B")), 2),
        )
        assert not is_negation_only(parse_query("!a@3"))

    def test_floor_zero_on_negation_is_plain_negation(self):
        # @0 is a no-op, so the canonical form drops the floor — and a
        # query that is then all-negative is rejected as usual
        assert normalize_query(parse_query("!a@0 b")) == parse_query(
            "!a b"
        )

    def test_negation_inside_disjunction_rejected(self):
        with pytest.raises(InvalidParameterError):
            parse_query("(a|!b)")

    def test_repr(self):
        assert repr(Q.not_("a")) == "NotToken(ItemToken('a'))"


class TestNegationOnlyDetection:
    def test_all_negative_is_flagged(self):
        assert is_negation_only(parse_query("!a"))
        assert is_negation_only(parse_query("!a ? *"))
        assert is_negation_only(parse_query("!a *{1,2} !^B"))

    def test_positive_token_clears_the_flag(self):
        assert not is_negation_only(parse_query("!a b"))
        assert not is_negation_only(parse_query("!a ^B"))
        assert not is_negation_only(parse_query("!a (x|y)"))
        assert not is_negation_only(parse_query("!a x@2"))

    def test_no_negation_is_not_flagged(self):
        assert not is_negation_only(parse_query("? *"))
        assert not is_negation_only(parse_query("a b"))


def test_normalize_rejects_empty_and_blank_strings():
    for empty in ["", "   ", "\t\n"]:
        with pytest.raises(InvalidParameterError):
            normalize_query(empty)


class TestCanonicalization:
    """``normalize_query`` rewrites semantic no-ops away, so equivalent
    spellings share one compiled form (and one service cache entry)."""

    def test_floor_zero_rewritten_to_inner(self):
        assert normalize_query("a@0 *") == normalize_query("a *")
        assert normalize_query("^B@0") == (UnderToken("B"),)
        assert normalize_query("?@0") == (AnyToken(),)
        assert normalize_query("(a|b)@0") == (
            OneOfToken((ItemToken("a"), ItemToken("b"))),
        )

    def test_floor_zero_rewritten_from_token_sequences(self):
        assert normalize_query([Q.floor("a", 0), Q.span()]) == (
            ItemToken("a"),
            SpanToken(),
        )
        assert normalize_query(Q.floor(Q.under("B"), 0)) == (
            UnderToken("B"),
        )

    def test_positive_floor_preserved(self):
        assert normalize_query("a@1 *") == (
            FloorToken(ItemToken("a"), 1),
            SpanToken(),
        )

    def test_parse_still_keeps_floor_zero(self):
        """The rewrite is normalize-time policy; the parser stays a
        faithful reading of the string."""
        assert parse_query("a@0") == (FloorToken(ItemToken("a"), 0),)

    # -- gap spellings fold into the shortest form -------------------

    def test_gap_singletons_rewrite_to_classic_tokens(self):
        assert normalize_query("*{0,}") == (SpanToken(),)
        assert normalize_query("*{1,}") == (PlusToken(),)
        assert normalize_query("a *{1,1}") == (ItemToken("a"), AnyToken())
        # bounds the short forms cannot express stay gaps
        assert normalize_query("*{0,3}") == (GapToken(0, 3),)
        assert normalize_query("*{2,}") == (GapToken(2, None),)

    def test_adjacent_gap_runs_collapse(self):
        assert normalize_query("* *") == (SpanToken(),)
        assert normalize_query("a * * b") == (
            ItemToken("a"),
            SpanToken(),
            ItemToken("b"),
        )
        assert normalize_query("* +") == (PlusToken(),)
        assert normalize_query("+ +") == (GapToken(2, None),)
        assert normalize_query("*{0,2} *{1,3}") == (GapToken(1, 5),)
        assert normalize_query("* *{1,2}") == (PlusToken(),)

    def test_any_folds_into_gap_runs_only(self):
        # '?' next to a real gap joins the collapse...
        assert normalize_query("? *") == (PlusToken(),)
        assert normalize_query("? + ?") == (GapToken(3, None),)
        assert normalize_query("*{0,1} ?") == (GapToken(1, 2),)
        # ...but pure-'?' runs keep their per-slot alignment
        assert normalize_query("? ?") == (AnyToken(), AnyToken())
        assert normalize_query("a ? ? b") == (
            ItemToken("a"),
            AnyToken(),
            AnyToken(),
            ItemToken("b"),
        )

    def test_collapse_is_idempotent(self):
        for text in ["* * + ?", "a *{1,2} * b", "? * ? a ? ?"]:
            once = normalize_query(text)
            assert normalize_query(once) == once, text

    def test_floored_any_does_not_fold(self):
        """``?@N`` binds an item (the floor constrains it) — it is not
        an arbitrary-gap token and must survive next to ``*``."""
        assert normalize_query("?@2 *") == (
            FloorToken(AnyToken(), 2),
            SpanToken(),
        )

    # -- disjunction choices implied by a ^ subtree ------------------

    def test_choice_implied_by_subtree_dropped(self):
        assert normalize_query("(a|^a)") == (UnderToken("a"),)
        assert normalize_query("(a|^a|b)") == (
            OneOfToken((ItemToken("b"), UnderToken("a"))),
        )

    def test_single_choice_disjunction_unwrapped(self):
        assert normalize_query("(a)") == (ItemToken("a"),)
        assert normalize_query("(^B)") == (UnderToken("B"),)

    def test_rewrites_recurse_through_wrappers(self):
        assert normalize_query("!(a|^a)") == (NotToken(UnderToken("a")),)
        assert normalize_query("(a|^a)@2") == (
            FloorToken(UnderToken("a"), 2),
        )
        assert normalize_query("!(a|^a|b)") == (
            NotToken(OneOfToken((ItemToken("b"), UnderToken("a")))),
        )

    def test_distinct_names_are_not_assumed_related(self):
        """Normalization is hierarchy-free: ``(b1|^B)`` keeps both
        choices even if some hierarchy happens to put b1 under B —
        only the name-level implication ``(x|^x)`` is decidable here."""
        assert normalize_query("(b1|^B)") == (
            OneOfToken((ItemToken("b1"), UnderToken("B"))),
        )
