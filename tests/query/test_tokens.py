"""Query language parsing (repro.query.tokens)."""

from __future__ import annotations

import pytest

from repro.errors import InvalidParameterError
from repro.query import (
    AnyToken,
    ItemToken,
    PlusToken,
    Q,
    SpanToken,
    UnderToken,
    parse_query,
)
from repro.query.tokens import normalize_query


def test_parse_plain_items():
    assert parse_query("a b c") == (
        ItemToken("a"),
        ItemToken("b"),
        ItemToken("c"),
    )


def test_parse_wildcards():
    assert parse_query("? * +") == (AnyToken(), SpanToken(), PlusToken())


def test_parse_under():
    assert parse_query("^NOUN lives") == (
        UnderToken("NOUN"),
        ItemToken("lives"),
    )


def test_parse_mixed_whitespace():
    assert parse_query("  the   ^ADJ\t? ") == (
        ItemToken("the"),
        UnderToken("ADJ"),
        AnyToken(),
    )


def test_parse_empty_rejected():
    with pytest.raises(InvalidParameterError):
        parse_query("   ")


def test_parse_bare_caret_rejected():
    with pytest.raises(InvalidParameterError):
        parse_query("the ^ house")


def test_q_constructors_equal_parsed():
    assert (Q.item("x"), Q.under("y"), Q.any(), Q.plus(), Q.span()) == (
        parse_query("x ^y ? + *")
    )


def test_q_escapes_special_names():
    """Items literally named '?' are only expressible through Q."""
    token = Q.item("?")
    assert token == ItemToken("?")
    assert parse_query("?") != (token,)


def test_tokens_hashable_and_comparable():
    assert len({Q.any(), Q.any(), Q.span(), Q.plus()}) == 3
    assert Q.under("x") != Q.item("x")


def test_normalize_accepts_string_token_and_sequence():
    assert normalize_query("a ?") == (ItemToken("a"), AnyToken())
    assert normalize_query(Q.any()) == (AnyToken(),)
    assert normalize_query([Q.item("a"), Q.span()]) == (
        ItemToken("a"),
        SpanToken(),
    )


def test_normalize_rejects_empty_sequence():
    with pytest.raises(InvalidParameterError):
        normalize_query([])


def test_normalize_rejects_non_tokens():
    with pytest.raises(InvalidParameterError):
        normalize_query(["a", "b"])  # raw strings are not tokens


def test_token_reprs_roundtrip_visually():
    assert repr(Q.under("ADJ")) == "UnderToken('ADJ')"
    assert repr(Q.item("the")) == "ItemToken('the')"
    assert repr(Q.any()) == "AnyToken()"
    assert repr(Q.span()) == "SpanToken()"
    assert repr(Q.plus()) == "PlusToken()"
