"""Unit tests for the cost-based query planner (:mod:`repro.query.cost`).

The differential harness proves every ordering and strategy the planner
can choose is answer-invariant; this file pins the *decisions* — node
ordering and the skip rule, the estimator's strategy picks on skewed
statistics, the LRU plan cache (promotion on hit, eviction counter),
shared position-space slicing, and the explain/estimate public surface.
Decisions are asserted, raw cost numbers are not: only the ratios in
:mod:`repro.analysis.costmodel` are meaningful.
"""

from __future__ import annotations

from itertools import product

import pytest

from repro.analysis.costmodel import NODE_SKIP_FACTOR
from repro.errors import InvalidParameterError
from repro.hierarchy import Hierarchy
from repro.query import PatternIndex, code_patterns
from repro.query.cost import (
    PLAN_ORDERS,
    PLAN_STRATEGIES,
    CostEstimate,
    combine_estimates,
    order_mask_nodes,
)
from repro.query.plan import PositionSpace
from repro.serve import open_store, write_store


@pytest.fixture(scope="module")
def skewed_index() -> PatternIndex:
    """A corpus with one ubiquitous item and one rare one: ``common``
    posts to 121 patterns, ``rare`` to 2 — past the ``cost`` ordering's
    skip factor, so a ``common rare`` query should intersect only the
    rare node and DP-verify."""
    hierarchy = Hierarchy()
    for name in ("common", "rare", "mid"):
        hierarchy.add_item(name)
    patterns = {}
    freq = 400
    for length in (1, 2, 3, 4, 5, 6):
        for combo in product(("common", "mid"), repeat=length):
            if "common" in combo:
                patterns[combo] = freq
                freq -= 2
    patterns[("common", "rare")] = 4
    patterns[("rare",)] = 3
    return PatternIndex(*code_patterns(patterns, hierarchy))


# ----------------------------------------------------------------------
# node ordering + skip rule
# ----------------------------------------------------------------------


class TestOrderMaskNodes:
    SIZED = [(100, (1, 2)), (3, (9,)), (40, (5,))]

    def test_cost_sorts_ascending_and_skips_oversized(self):
        included, skipped = order_mask_nodes(list(self.SIZED), "cost")
        # ceiling = NODE_SKIP_FACTOR * 3: both 40 and 100 exceed it
        assert NODE_SKIP_FACTOR * 3 < 40
        assert [entries for entries, _ in included] == [3]
        assert [entries for entries, _ in skipped] == [40, 100]

    def test_cost_keeps_balanced_nodes(self):
        sized = [(10, (1,)), (20, (2,)), (60, (3,))]
        included, skipped = order_mask_nodes(sized, "cost")
        assert NODE_SKIP_FACTOR * 10 >= 60
        assert [entries for entries, _ in included] == [10, 20, 60]
        assert skipped == []

    def test_worst_is_descending_with_no_skip(self):
        included, skipped = order_mask_nodes(list(self.SIZED), "worst")
        assert [entries for entries, _ in included] == [100, 40, 3]
        assert skipped == []

    def test_cardinality_is_the_legacy_id_set_order(self):
        included, skipped = order_mask_nodes(list(self.SIZED), "cardinality")
        # sorted by len(ids): the 100-entry two-id node goes *after*
        # the single-id ones — the blindness the cost order fixes
        assert [len(ids) for _, ids in included] == [1, 1, 2]
        assert skipped == []


# ----------------------------------------------------------------------
# the estimator's strategy decisions
# ----------------------------------------------------------------------


class TestEstimatorDecisions:
    def test_skewed_pair_prunes_and_skips_the_common_node(
        self, skewed_index
    ):
        plan = skewed_index.explain("common rare")
        estimate = plan["estimate"]
        assert plan["strategy"] == "pruned"
        by_postings = sorted(
            estimate["nodes"], key=lambda node: node["postings"]
        )
        assert by_postings[0]["skipped"] is False  # rare: the mask
        assert by_postings[-1]["skipped"] is True  # common: skipped
        # candidate prediction tracks the rare postings, not the scan
        assert estimate["candidates"] <= by_postings[0]["postings"]

    def test_chainless_query_is_a_wildcard_scan(self, skewed_index):
        estimate = skewed_index.estimate_cost("? ?")
        assert estimate.strategy == "wildcard"
        assert estimate.scan_candidates == estimate.candidates > 0

    def test_unsatisfiable_floor_costs_nothing(self, skewed_index):
        estimate = skewed_index.estimate_cost("common@999999")
        assert estimate.strategy == "unsatisfiable"
        assert estimate.candidates == 0

    def test_negation_only_chain_scans_without_positions(self, tmp_path):
        hierarchy = Hierarchy()
        for name in ("a", "b"):
            hierarchy.add_item(name)
        coded, vocab = code_patterns(
            {("a", "b"): 3, ("b", "b"): 2, ("a",): 1}, hierarchy
        )
        path = tmp_path / "v1.store"
        write_store(path, coded, vocab, store_version=1)
        with open_store(path) as legacy:
            assert not legacy._has_positions()
            # no "in" node to build a mask from → the length scan is
            # the only option, and the estimate says so
            estimate = legacy.estimate_cost("!a ?")
            assert estimate.strategy == "scan"

    def test_costs_rank_narrow_below_broad(self, skewed_index):
        narrow = skewed_index.estimate_cost("rare").cost
        broad = skewed_index.estimate_cost("? ?").cost
        assert 0 < narrow < broad


# ----------------------------------------------------------------------
# estimate surface
# ----------------------------------------------------------------------


class TestCostEstimate:
    def test_wire_projection_is_integer_only(self, skewed_index):
        wire = skewed_index.estimate_cost("common rare").to_wire()
        assert isinstance(wire["cost"], int)
        assert set(wire) == {
            "cost", "strategy", "candidates", "scan_candidates", "shards",
        }

    def test_combine_sums_and_reports_mixed_strategies(self):
        a = CostEstimate(
            cost=10.0, strategy="pruned", candidates=2, scan_candidates=5
        )
        b = CostEstimate(
            cost=4.0, strategy="exact", candidates=1, scan_candidates=3
        )
        combined = combine_estimates([a, b, None])
        assert combined.cost == 14.0
        assert combined.strategy == "mixed"
        assert combined.candidates == 3
        assert combined.scan_candidates == 8
        assert combined.shards == 2
        same = combine_estimates([a, a])
        assert same.strategy == "pruned"

    def test_combine_of_nothing_is_unsatisfiable(self):
        assert combine_estimates([]).strategy == "unsatisfiable"

    def test_set_planner_validates_knobs(self, skewed_index):
        with pytest.raises(InvalidParameterError, match="order"):
            skewed_index.set_planner("fastest")
        with pytest.raises(InvalidParameterError, match="strategy"):
            skewed_index.set_planner("cost", "psychic")
        for order in PLAN_ORDERS:
            for strategy in (None, *PLAN_STRATEGIES):
                skewed_index.set_planner(order, strategy)
        skewed_index.set_planner()

    def test_explain_reports_forced_strategy(self, skewed_index):
        try:
            skewed_index.set_planner("cost", "scan")
            plan = skewed_index.explain("common rare")
            assert plan["forced_strategy"] == "scan"
            assert plan["strategy"] == "scan"
        finally:
            skewed_index.set_planner()


# ----------------------------------------------------------------------
# plan cache: LRU promotion + eviction counter
# ----------------------------------------------------------------------


class TestPlanCacheLru:
    def test_hot_plan_survives_cap_churn(self, skewed_index):
        hierarchy = Hierarchy()
        for name in ("a", "b", "c", "d"):
            hierarchy.add_item(name)
        coded, vocab = code_patterns(
            {("a",): 4, ("b",): 3, ("c",): 2, ("d",): 1}, hierarchy
        )
        index = PatternIndex(coded, vocab)
        index._PLAN_CACHE_CAP = 2
        index.search("a")
        index.search("b")
        index.search("a")  # hit → promoted to most-recent
        index.search("c")  # overflow: evicts "b" (LRU), not hot "a"
        stats = index.plan_stats()
        assert stats["entries"] == 2
        assert stats["evictions"] == 1
        compiles_before = index.plan_stats()["compiles"]
        index.search("a")  # still cached: no recompile
        assert index.plan_stats()["compiles"] == compiles_before
        index.search("b")  # was evicted: recompiled
        assert index.plan_stats()["compiles"] == compiles_before + 1


# ----------------------------------------------------------------------
# shared position space slices
# ----------------------------------------------------------------------


class TestPositionSpaceSlices:
    LENGTHS = [2, 3, 1, 4, 2, 2]

    def test_slice_equals_direct_build_with_global_pad(self):
        space = PositionSpace(self.LENGTHS)
        view = space.slice_fields(1, 3)
        direct = PositionSpace(self.LENGTHS[1:4], pad=space.pad)
        assert view.offsets == direct.offsets
        assert view.valid == direct.valid
        assert view.pad == direct.pad
        assert view.total == direct.total

    def test_slices_partition_the_space(self):
        space = PositionSpace(self.LENGTHS)
        first = space.slice_fields(0, 2)
        rest = space.slice_fields(2, 4)
        assert len(first.offsets) + len(rest.offsets) == len(self.LENGTHS)
        # rebased: every slice starts at its own origin
        assert first.offsets[0] == 0
        assert rest.offsets[0] == 0

    def test_empty_slice(self):
        space = PositionSpace(self.LENGTHS)
        view = space.slice_fields(3, 0)
        assert view.offsets == []
        assert view.valid == 0

    def test_pad_below_max_len_rejected(self):
        with pytest.raises(ValueError, match="pad"):
            PositionSpace([3, 1], pad=2)
