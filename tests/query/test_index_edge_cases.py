"""Edge cases for the pattern index: empty results, flat vocabularies,
items outside the hierarchy, duplicate tokens, deep descendant closures."""

from __future__ import annotations

import pytest

from repro import Hierarchy, PatternIndex, Q, SequenceDatabase, mine
from repro.hierarchy import build_vocabulary


@pytest.fixture()
def empty_index(fig1_database, fig1_hierarchy):
    # sigma above |D| -> empty output
    result = mine(fig1_database, fig1_hierarchy, sigma=100, gamma=1, lam=3)
    assert len(result.patterns) == 0
    return PatternIndex.from_result(result)


def test_empty_index_basics(empty_index):
    assert len(empty_index) == 0
    assert list(empty_index) == []
    assert empty_index.top(5) == []
    assert empty_index.search("a ?") == []
    assert empty_index.search("*") == []
    assert empty_index.count("?") == 0
    assert empty_index.total_frequency("?") == 0


def test_empty_index_slot_fillers(empty_index):
    assert empty_index.slot_fillers("a ?", 1) == []


def test_empty_index_navigation(empty_index):
    assert empty_index.generalizations_of(("a", "B")) == []
    assert empty_index.specializations_of(("a", "B")) == []


def test_flat_vocabulary_under_equals_item(fig1_database):
    """Without hierarchy edges, ^name degenerates to an exact match."""
    result = mine(fig1_database, None, sigma=2, gamma=1, lam=3)
    index = PatternIndex.from_result(result)
    assert index.search("^a ?") == index.search("a ?")


def test_deep_descendant_closure():
    """^root must match items any number of levels below."""
    h = Hierarchy()
    h.add_item("root")
    h.add_item("mid", "root")
    h.add_item("leaf", "mid")
    h.add_item("x")
    db = SequenceDatabase([["x", "leaf"]] * 3 + [["x", "mid"]] * 2)
    result = mine(db, h, sigma=2, gamma=0, lam=2)
    index = PatternIndex.from_result(result)
    renders = {m.render() for m in index.search("x ^root")}
    assert renders == {"x leaf", "x mid", "x root"}
    # ^mid excludes the root itself
    renders_mid = {m.render() for m in index.search("x ^mid")}
    assert renders_mid == {"x leaf", "x mid"}


def test_repeated_under_tokens():
    h = Hierarchy()
    h.add_item("A")
    h.add_item("a1", "A")
    db = SequenceDatabase([["a1", "a1"]] * 3)
    result = mine(db, h, sigma=2, gamma=0, lam=2)
    index = PatternIndex.from_result(result)
    assert index.count("^A ^A") == len(result.patterns)


def test_query_longer_than_any_pattern(fig1_database, fig1_hierarchy):
    result = mine(fig1_database, fig1_hierarchy, sigma=2, gamma=1, lam=3)
    index = PatternIndex.from_result(result)
    assert index.search("a ? ? ? ? ?") == []
    # but a span-padded long query can still match short patterns
    assert index.count("* a * B *") > 0


def test_consecutive_spans(fig1_database, fig1_hierarchy):
    """Adjacent '*' tokens are redundant but must not break matching."""
    result = mine(fig1_database, fig1_hierarchy, sigma=2, gamma=1, lam=3)
    index = PatternIndex.from_result(result)
    assert {m.render() for m in index.search("* * D")} == {
        m.render() for m in index.search("* D")
    }


def test_plus_vs_span_on_boundary(fig1_database, fig1_hierarchy):
    result = mine(fig1_database, fig1_hierarchy, sigma=2, gamma=1, lam=3)
    index = PatternIndex.from_result(result)
    with_span = {m.render() for m in index.search("a B *")}
    with_plus = {m.render() for m in index.search("a B +")}
    assert "a B" in with_span
    assert "a B" not in with_plus
    assert with_plus < with_span


def test_index_accepts_raw_patterns_and_vocabulary(fig1_database,
                                                   fig1_hierarchy):
    vocabulary = build_vocabulary(fig1_database, fig1_hierarchy)
    patterns = {
        vocabulary.encode_sequence(("a", "B")): 3,
        vocabulary.encode_sequence(("a", "c")): 2,
    }
    index = PatternIndex(patterns, vocabulary)
    assert index.frequency("a", "B") == 3
    assert index.count("a ?") == 2


def test_programmatic_mixed_query(fig1_database, fig1_hierarchy):
    result = mine(fig1_database, fig1_hierarchy, sigma=2, gamma=1, lam=3)
    index = PatternIndex.from_result(result)
    matches = index.search((Q.span(), Q.under("D")))
    assert {m.render() for m in matches} == {"b1 D", "B D"}
