"""Negation, bounded-gap and per-query σ semantics on a hand-checked
index (mirror of ``test_oneof_floor.py`` for the phase-2 tokens)."""

from __future__ import annotations

import pytest

from repro import Hierarchy
from repro.errors import InvalidParameterError, UnknownItemError
from repro.query import PatternIndex, Q, code_patterns
from repro.serve import open_store


@pytest.fixture(scope="module")
def small_index() -> PatternIndex:
    """Five patterns over {a, c, B > {b1, b2}} (see test_oneof_floor)."""
    hierarchy = Hierarchy()
    for root in ("a", "B", "c"):
        hierarchy.add_item(root)
    for child in ("b1", "b2"):
        hierarchy.add_edge(child, "B")
    patterns = {
        ("a", "b1"): 5,
        ("a", "b2"): 3,
        ("a", "c"): 2,
        ("B",): 7,
        ("b1",): 4,
    }
    return PatternIndex(*code_patterns(patterns, hierarchy))


def _answers(index, query, **kwargs):
    return [(m.render(), m.frequency) for m in index.search(query, **kwargs)]


class TestNegationSemantics:
    def test_exact_item_negation(self, small_index):
        assert _answers(small_index, "a !c") == [("a b1", 5), ("a b2", 3)]

    def test_subtree_negation_excludes_descendants(self, small_index):
        # !^B forbids B, b1 and b2 — only 'a c' survives
        assert _answers(small_index, "a !^B") == [("a c", 2)]

    def test_negated_disjunction(self, small_index):
        assert _answers(small_index, "a !(c|b2)") == [("a b1", 5)]

    def test_negation_consumes_exactly_one_item(self, small_index):
        # one-item patterns cannot satisfy 'token + negation'
        assert _answers(small_index, "!a") == [("B", 7), ("b1", 4)]
        assert ("B", 7) not in small_index.search("a !c")

    def test_string_and_q_paths_agree(self, small_index):
        assert small_index.search("a !^B") == small_index.search(
            (Q.item("a"), Q.not_(Q.under("B")))
        )

    def test_unknown_inner_item_raises(self, small_index):
        with pytest.raises(UnknownItemError):
            small_index.search("a !zzz")
        with pytest.raises(UnknownItemError):
            small_index.search("a !^zzz")

    def test_all_negative_query_uses_length_fallback(self, small_index):
        # backends answer all-negative queries via the length groups
        assert _answers(small_index, "!c !^B") == [("a c", 2)]
        # every stored two-item pattern starts with 'a': negating it
        # at the first slot leaves nothing of achievable length
        assert _answers(small_index, "!a ? *") == []
        assert _answers(small_index, "!^B ? *") == [
            ("a b1", 5),
            ("a b2", 3),
            ("a c", 2),
        ]

    def test_slot_fillers_accepts_negation(self, small_index):
        assert small_index.slot_fillers("a !c", 1) == [("b1", 5), ("b2", 3)]


class TestGapSemantics:
    def test_bounded_gap_between_items(self, small_index):
        assert _answers(small_index, "a *{0,1}") == [
            ("a b1", 5),
            ("a b2", 3),
            ("a c", 2),
        ]
        # m >= 1 forbids the bare two-item alignment with nothing after
        assert _answers(small_index, "a *{2,3}") == []

    def test_gap_at_string_boundaries(self, small_index):
        assert _answers(small_index, "*{0,1} b1") == [
            ("a b1", 5),
            ("b1", 4),
        ]
        assert _answers(small_index, "*{1,1} b1") == [("a b1", 5)]

    def test_gap_only_query_filters_by_length(self, small_index):
        assert _answers(small_index, "*{1,1}") == [("B", 7), ("b1", 4)]
        assert _answers(small_index, "*{2,}") == [
            ("a b1", 5),
            ("a b2", 3),
            ("a c", 2),
        ]
        assert _answers(small_index, "*{3,}") == []

    def test_slot_fillers_rejects_gaps(self, small_index):
        with pytest.raises(InvalidParameterError):
            small_index.slot_fillers("a *{1,2}", 0)

    def test_slot_fillers_accepts_normalized_fixed_gap(self, small_index):
        # *{1,1} normalizes to '?', which is a bound slot
        assert small_index.slot_fillers("a *{1,1}", 1) == [
            ("b1", 5),
            ("b2", 3),
            ("c", 2),
        ]


class TestPerQuerySigma:
    def test_min_freq_cuts_the_ranking(self, small_index):
        assert _answers(small_index, "a ?", min_freq=3) == [
            ("a b1", 5),
            ("a b2", 3),
        ]
        assert _answers(small_index, "a ?", min_freq=6) == []

    def test_min_freq_zero_and_none_are_no_ops(self, small_index):
        full = _answers(small_index, "a ?")
        assert _answers(small_index, "a ?", min_freq=0) == full
        assert _answers(small_index, "a ?", min_freq=None) == full

    def test_min_freq_composes_with_limit(self, small_index):
        assert _answers(small_index, "?", min_freq=4, limit=2) == [
            ("B", 7),
            ("b1", 4),
        ]

    def test_min_freq_bounds_pattern_not_item_frequency(self, small_index):
        # b1's corpus frequency is 2 but its mined pattern frequency 4:
        # σ=3 keeps it, while a token floor b1@3 would not
        assert ("b1", 4) in _answers(small_index, "?", min_freq=3)
        assert _answers(small_index, "b1@3") == []

    def test_count_and_mass_respect_min_freq(self, small_index):
        assert small_index.count("a ?", min_freq=3) == 2
        assert small_index.total_frequency("a ?", min_freq=3) == 8

    @pytest.mark.parametrize("bad", [-1, 1.5, True, "3"])
    def test_invalid_min_freq_rejected(self, small_index, bad):
        with pytest.raises(InvalidParameterError):
            small_index.search("a ?", min_freq=bad)


def test_new_tokens_round_trip_through_stores(small_index, tmp_path):
    """Single-file and sharded stores answer the phase-2 constructs
    exactly like the in-memory index."""
    from repro.serve import write_sharded_store, write_store

    single = tmp_path / "neg.store"
    sharded = tmp_path / "neg.shards"
    patterns = {
        small_index.vocabulary.encode_sequence(m.pattern): m.frequency
        for m in small_index
    }
    write_store(single, patterns, small_index.vocabulary)
    write_sharded_store(sharded, patterns, small_index.vocabulary, 2)
    queries = [
        ("a !c", {}),
        ("a !^B", {}),
        ("!(a|c) ?", {}),
        ("*{0,1} b1", {}),
        ("a *{1,2}", {}),
        ("?", {"min_freq": 4}),
        ("a ?", {"min_freq": 3}),
        ("!c !^B", {}),
    ]
    with open_store(single) as s1, open_store(sharded) as s2:
        for query, kwargs in queries:
            expected = _answers(small_index, query, **kwargs)
            assert _answers(s1, query, **kwargs) == expected, query
            assert _answers(s2, query, **kwargs) == expected, query
