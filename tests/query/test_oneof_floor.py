"""Disjunction and frequency-floor semantics on a hand-checked index."""

from __future__ import annotations

import pytest

from repro import Hierarchy
from repro.errors import InvalidParameterError, UnknownItemError
from repro.query import PatternIndex, Q, code_patterns
from repro.serve import open_store


@pytest.fixture(scope="module")
def small_index() -> PatternIndex:
    """Five patterns over {a, c, B > {b1, b2}}.

    ``code_patterns`` derives item frequencies from the pattern set as a
    corpus, so f0 here is: B=4 (every pattern containing B, b1 or b2),
    a=3, b1=2, c=1, b2=1 — the floors below are chosen around these.
    """
    hierarchy = Hierarchy()
    for root in ("a", "B", "c"):
        hierarchy.add_item(root)
    for child in ("b1", "b2"):
        hierarchy.add_edge(child, "B")
    patterns = {
        ("a", "b1"): 5,
        ("a", "b2"): 3,
        ("a", "c"): 2,
        ("B",): 7,
        ("b1",): 4,
    }
    return PatternIndex(*code_patterns(patterns, hierarchy))


def _answers(index, query):
    return [(m.render(), m.frequency) for m in index.search(query)]


class TestDisjunctionSemantics:
    def test_item_choices(self, small_index):
        assert _answers(small_index, "a (b1|c)") == [
            ("a b1", 5),
            ("a c", 2),
        ]

    def test_under_choice_expands_subtree(self, small_index):
        assert _answers(small_index, "(^B)") == [("B", 7), ("b1", 4)]

    def test_mixed_choices(self, small_index):
        assert _answers(small_index, "a (c|^B)") == [
            ("a b1", 5),
            ("a b2", 3),
            ("a c", 2),
        ]

    def test_consumes_exactly_one_item(self, small_index):
        # a disjunction is a region, not a gap: the length-1 pattern
        # ("B",) cannot satisfy a two-token query by itself
        assert _answers(small_index, "(^B) (^B)") == []

    def test_string_and_q_paths_agree(self, small_index):
        assert small_index.search("a (b1|c)") == small_index.search(
            (Q.item("a"), Q.oneof("b1", "c"))
        )

    def test_unknown_choice_raises(self, small_index):
        with pytest.raises(UnknownItemError):
            small_index.search("(a|nope)")

    def test_slot_fillers_accepts_disjunction(self, small_index):
        assert small_index.slot_fillers("a (b1|b2)", 1) == [
            ("b1", 5),
            ("b2", 3),
        ]


class TestFloorSemantics:
    def test_floor_on_any(self, small_index):
        # only B (f0=4) clears the floor among single-item patterns
        assert _answers(small_index, "?@4") == [("B", 7)]

    def test_floor_on_item(self, small_index):
        assert _answers(small_index, "a b1@2") == [("a b1", 5)]
        assert _answers(small_index, "a b1@3") == []

    def test_floor_on_under(self, small_index):
        # descendants of B with f0 >= 3: only B itself
        assert _answers(small_index, "^B@3") == [("B", 7)]

    def test_floor_on_disjunction(self, small_index):
        assert _answers(small_index, "(b1|c)@2") == [("b1", 4)]

    def test_floor_zero_is_identity(self, small_index):
        assert small_index.search("?@0") == small_index.search("?")
        assert small_index.search("^B@0") == small_index.search("^B")

    def test_unsatisfiable_floor_matches_nothing(self, small_index):
        assert small_index.search("a@99") == []
        assert small_index.count("?@99 *") == 0

    def test_floor_bounds_corpus_frequency_not_pattern_frequency(
        self, small_index
    ):
        # ("b1",) was mined with frequency 4, but the floor reads the
        # *item's* corpus frequency f0(b1)=2, so @3 cuts it
        assert _answers(small_index, "b1@3") == []
        assert _answers(small_index, "b1@2") == [("b1", 4)]


class TestEmptyQueryConsistency:
    """Satellite: every backend rejects empty queries identically."""

    @pytest.mark.parametrize("empty", ["", "   ", (), []])
    def test_index_rejects(self, small_index, empty):
        with pytest.raises(InvalidParameterError):
            small_index.search(empty)

    @pytest.mark.parametrize("empty", ["", "   ", ()])
    @pytest.mark.parametrize("shards", [None, 2])
    def test_stores_reject(self, small_index, tmp_path, empty, shards):
        from repro.serve import write_sharded_store, write_store

        coded = dict(small_index._patterns)
        path = tmp_path / f"s{shards}.store"
        if shards is None:
            write_store(path, coded, small_index.vocabulary)
        else:
            write_sharded_store(
                path, coded, small_index.vocabulary, shards
            )
        with open_store(path) as store:
            with pytest.raises(InvalidParameterError):
                store.search(empty)


def test_new_tokens_round_trip_through_stores(small_index, tmp_path):
    """Single-file and sharded stores answer the new token kinds exactly
    like the in-memory index (spot check; the property harness fuzzes
    this broadly)."""
    from repro.serve import write_sharded_store, write_store

    coded = dict(small_index._patterns)
    single = tmp_path / "rt.store"
    write_store(single, coded, small_index.vocabulary)
    sharded = tmp_path / "rt.shards"
    write_sharded_store(sharded, coded, small_index.vocabulary, 3)
    for query in ["a (c|^B)", "(b1|c)@2", "?@4 *", "(a|b2) +"]:
        expected = small_index.search(query)
        for path in (single, sharded):
            with open_store(path) as store:
                assert store.search(query) == expected, query
