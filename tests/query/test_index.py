"""Pattern index and wildcard search (repro.query.index).

All expectations derive from the paper's Fig. 1 example mined with
σ=2, γ=1, λ=3, whose output the paper lists explicitly:
aa:2, ab1:2, b1a:2, aB:3, Ba:2, aBc:2, Bc:2, ac:2, b1D:2, BD:2.
"""

from __future__ import annotations

import pytest

from repro import PatternIndex, Q, mine
from repro.errors import InvalidParameterError, UnknownItemError


@pytest.fixture(scope="module")
def fig1_result():
    from tests.conftest import paper_database, paper_hierarchy

    return mine(
        paper_database(), paper_hierarchy(), sigma=2, gamma=1, lam=3
    )


@pytest.fixture(scope="module")
def index(fig1_result):
    return PatternIndex.from_result(fig1_result)


def renders(matches):
    return {m.render() for m in matches}


# ----------------------------------------------------------------------
# exact and wildcard search
# ----------------------------------------------------------------------


def test_exact_match(index):
    matches = index.search("a B")
    assert [(m.render(), m.frequency) for m in matches] == [("a B", 3)]


def test_any_token(index):
    assert renders(index.search("a ?")) == {"a a", "a b1", "a B", "a c"}


def test_span_token(index):
    assert renders(index.search("a *")) == {
        "a a", "a b1", "a B", "a c", "a B c",
    }


def test_span_vs_any_in_the_middle(index):
    assert renders(index.search("a * c")) == {"a c", "a B c"}
    assert renders(index.search("a ? c")) == {"a B c"}


def test_plus_token(index):
    # no length-1 patterns exist, so "a +" equals "a *" here
    assert renders(index.search("a +")) == renders(index.search("a *"))
    # but "+" alone must not match an empty span
    assert renders(index.search("a + c")) == {"a B c"}


def test_under_token_matches_descendants(index):
    assert renders(index.search("^B a")) == {"b1 a", "B a"}
    assert renders(index.search("^B ?")) == {
        "B a", "b1 a", "B c", "B D", "b1 D",
    }


def test_under_token_includes_self_only_when_indexed(index):
    # ^D in last slot: D itself (no d1/d2 patterns are frequent)
    assert renders(index.search("? ^D")) == {"b1 D", "B D"}


def test_trailing_span_matches_suffix(index):
    assert renders(index.search("* D")) == {"b1 D", "B D"}


def test_wildcard_only_queries(index):
    assert len(index.search("? ?")) == 9
    assert len(index.search("? ? ?")) == 1
    assert len(index.search("*")) == 10
    assert len(index.search("+")) == 10
    assert index.search("? ? ? ?") == []


def test_results_ordered_by_frequency_then_text(index):
    matches = index.search("a ?")
    assert matches[0].render() == "a B"  # frequency 3 beats the 2s
    tail = [m.render() for m in matches[1:]]
    assert tail == sorted(tail)


def test_limit(index):
    assert len(index.search("? ?", limit=3)) == 3


def test_unknown_item_raises(index):
    with pytest.raises(UnknownItemError):
        index.search("a zz")


def test_programmatic_query(index):
    matches = index.search([Q.item("a"), Q.under("B")])
    assert renders(matches) == {"a b1", "a B"}


# ----------------------------------------------------------------------
# aggregation helpers
# ----------------------------------------------------------------------


def test_count_and_total_frequency(index):
    assert index.count("a ?") == 4
    assert index.total_frequency("a ?") == 2 + 2 + 3 + 2


def test_slot_fillers(index):
    fillers = index.slot_fillers("a ?", 1)
    assert fillers[0] == ("B", 3)
    assert set(fillers) == {("B", 3), ("a", 2), ("b1", 2), ("c", 2)}
    # ties are ordered alphabetically after frequency
    assert [name for name, _ in fillers[1:]] == ["a", "b1", "c"]


def test_slot_fillers_rejects_span(index):
    with pytest.raises(InvalidParameterError):
        index.slot_fillers("a *", 1)
    with pytest.raises(InvalidParameterError):
        index.slot_fillers("a +", 1)


def test_slot_fillers_rejects_bad_slot(index):
    with pytest.raises(InvalidParameterError):
        index.slot_fillers("a ?", 2)
    with pytest.raises(InvalidParameterError):
        index.slot_fillers("a ?", -1)


# ----------------------------------------------------------------------
# hierarchy navigation
# ----------------------------------------------------------------------


def test_generalizations_of(index):
    assert renders(index.generalizations_of(("a", "b1"))) == {"a b1", "a B"}
    # b11 itself was never frequent, but its generalizations were
    assert renders(index.generalizations_of(("a", "b11"))) == {"a b1", "a B"}


def test_specializations_of(index):
    assert renders(index.specializations_of(("a", "B"))) == {"a b1", "a B"}
    assert renders(index.specializations_of(("B", "D"))) == {"B D", "b1 D"}


def test_generalizations_respect_length(index):
    assert index.generalizations_of(("a", "B", "c", "c")) == []


# ----------------------------------------------------------------------
# container protocol
# ----------------------------------------------------------------------


def test_len_iter_contains(index, fig1_result):
    assert len(index) == len(fig1_result.patterns) == 10
    assert sum(1 for _ in index) == 10
    assert ("a", "B") in index
    assert ("a", "zz") not in index
    assert ("a", "B", "c", "c") not in index


def test_frequency_accessor(index):
    assert index.frequency("a", "B") == 3
    assert index.frequency("B", "B") == 0
    assert index.frequency("zz") == 0  # unknown names are absent, not errors


def test_top(index):
    top = index.top(3)
    assert top[0].render() == "a B" and top[0].frequency == 3
    assert len(top) == 3
    assert len(index.top(100)) == 10


def test_iteration_order_most_frequent_first(index):
    frequencies = [m.frequency for m in index]
    assert frequencies == sorted(frequencies, reverse=True)


def test_query_match_repr(index):
    match = index.search("a B")[0]
    assert "a B" in repr(match) and "3" in repr(match)


# ----------------------------------------------------------------------
# reference matcher cross-check
# ----------------------------------------------------------------------


def _reference_match(tokens, pattern, vocabulary):
    """Obviously-correct recursive matcher used to validate the DP."""
    from repro.query.tokens import (
        AnyToken,
        GapToken,
        ItemToken,
        PlusToken,
        SpanToken,
        UnderToken,
    )

    if not tokens:
        return not pattern
    head, rest = tokens[0], tokens[1:]
    if isinstance(head, SpanToken):
        return any(
            _reference_match(rest, pattern[k:], vocabulary)
            for k in range(len(pattern) + 1)
        )
    if isinstance(head, PlusToken):
        return any(
            _reference_match(rest, pattern[k:], vocabulary)
            for k in range(1, len(pattern) + 1)
        )
    if isinstance(head, GapToken):
        # normalization collapses e.g. '? +' into *{2,} — the reference
        # matcher consumes the bounded run directly
        upper = (
            len(pattern)
            if head.max_items is None
            else min(len(pattern), head.max_items)
        )
        return any(
            _reference_match(rest, pattern[k:], vocabulary)
            for k in range(head.min_items, upper + 1)
        )
    if not pattern:
        return False
    item = pattern[0]
    if isinstance(head, AnyToken):
        ok = True
    elif isinstance(head, ItemToken):
        ok = item == vocabulary.id(head.name)
    else:
        ok = vocabulary.generalizes_to(item, vocabulary.id(head.name))
    return ok and _reference_match(rest, pattern[1:], vocabulary)


def test_dp_matcher_agrees_with_reference(index, fig1_result):
    """Exhaustive cross-check over a systematic query battery."""
    from itertools import product

    from repro.query.tokens import normalize_query

    vocabulary = fig1_result.vocabulary
    alphabet = ["a", "^B", "?", "*", "+", "c", "^D"]
    for length in (1, 2, 3):
        for combo in product(alphabet, repeat=length):
            tokens = normalize_query(" ".join(combo))
            expected = {
                pattern
                for pattern in fig1_result.patterns
                if _reference_match(tokens, pattern, vocabulary)
            }
            got = {
                vocabulary.encode_sequence(m.pattern)
                for m in index.search(tokens)
            }
            assert got == expected, combo
