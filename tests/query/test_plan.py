"""Unit tests for the compiled-query-plan engine (:mod:`repro.query.plan`).

The differential harness proves the accelerated engine agrees with the
reference DP end to end; this file pins down the pieces — the position
bitmap geometry, window shift algebra, plan structure, per-backend plan
cache, hierarchy-aware disjunction hoisting, and the version-1 store
fallback + compaction migration path.
"""

from __future__ import annotations

import pytest

from repro import Hierarchy
from repro.query import PatternIndex, code_patterns
from repro.query.plan import PositionSpace, QueryPlan, iter_bit_indexes
from repro.query.tokens import normalize_query
from repro.serve import (
    StoreCompactor,
    open_store,
    write_sharded_store,
    write_store,
)
from repro.serve.format import VERSION, VERSION_POSITIONAL


@pytest.fixture(scope="module")
def small_index() -> PatternIndex:
    """Five patterns over {a, c, B > {b1, b2}} (see test_oneof_floor)."""
    hierarchy = Hierarchy()
    for root in ("a", "B", "c"):
        hierarchy.add_item(root)
    for child in ("b1", "b2"):
        hierarchy.add_edge(child, "B")
    patterns = {
        ("a", "b1"): 5,
        ("a", "b2"): 3,
        ("a", "c"): 2,
        ("B",): 7,
        ("b1",): 4,
    }
    return PatternIndex(*code_patterns(patterns, hierarchy))


def _compiled(backend, query):
    return backend._compile(normalize_query(query))


def _answers(backend, query, **kwargs):
    return [
        (m.render(), m.frequency) for m in backend.search(query, **kwargs)
    ]


# ----------------------------------------------------------------------
# bitmap primitives
# ----------------------------------------------------------------------


class TestIterBitIndexes:
    def test_empty(self):
        assert list(iter_bit_indexes(0)) == []

    def test_ascending(self):
        assert list(iter_bit_indexes(0b101001)) == [0, 3, 5]

    def test_large_indexes(self):
        mask = (1 << 500) | (1 << 9000) | 1
        assert list(iter_bit_indexes(mask)) == [0, 500, 9000]


class TestPositionSpace:
    def test_geometry(self):
        space = PositionSpace([2, 3, 1])
        # pad equals the max length; fields are length + pad apart
        assert space.max_len == 3
        assert space.pad == 3
        assert space.offsets == [0, 5, 11]
        # valid marks exactly the in-field slots
        expected_valid = 0
        for base, length in zip(space.offsets, [2, 3, 1]):
            for slot in range(base, base + length):
                expected_valid |= 1 << slot
        assert space.valid == expected_valid
        assert list(iter_bit_indexes(space.starts)) == [0, 5, 11]
        assert list(iter_bit_indexes(space.ends)) == [1, 7, 11]

    def test_shift_window_up_exact(self):
        space = PositionSpace([3])
        # from position 0, advancing exactly 2 lands on position 2
        assert space.shift_window_up(1 << 0, (2, 2)) == 1 << 2

    def test_shift_window_up_range_and_unbounded(self):
        space = PositionSpace([4])
        bits = 1 << 0
        assert space.shift_window_up(bits, (1, 2)) == (1 << 1) | (1 << 2)
        assert space.shift_window_up(bits, (0, None)) == 0b1111

    def test_shift_clamps_overlong_distances(self):
        space = PositionSpace([3])
        # no field can hold two slots 5 apart: lower bound beyond the
        # longest pattern admits nothing
        assert space.shift_window_up(1 << 0, (5, None)) == 0

    def test_shifts_never_cross_fields(self):
        space = PositionSpace([2, 2])
        last_of_first = 1 << 1
        # even an unbounded window stays inside the first field
        reached = space.shift_window_up(last_of_first, (0, None))
        assert reached == last_of_first
        first_of_second = 1 << space.offsets[1]
        down = space.shift_window_down(first_of_second, (0, None))
        assert down == first_of_second

    def test_shift_window_down_mirrors_up(self):
        space = PositionSpace([4])
        bits = 1 << 3
        assert space.shift_window_down(bits, (1, 2)) == (1 << 1) | (1 << 2)

    def test_field_indexes_deduplicates(self):
        space = PositionSpace([2, 3])
        bits = (1 << 0) | (1 << 1) | (1 << space.offsets[1])
        assert space.field_indexes(bits) == [0, 1]


# ----------------------------------------------------------------------
# plan structure
# ----------------------------------------------------------------------


class TestQueryPlanStructure:
    def test_chain_and_windows(self, small_index):
        plan = QueryPlan(_compiled(small_index, "a * b1"), small_index)
        assert [kind for kind, _ in plan.chain] == ["in", "in"]
        # prefix window, the span between the items, tail window
        assert plan.windows == [(0, 0), (0, None), (0, 0)]
        assert plan.min_len == 2
        assert plan.max_len is None

    def test_wildcards_fold_into_windows(self, small_index):
        plan = QueryPlan(_compiled(small_index, "? *{1,2} a +"), small_index)
        assert [kind for kind, _ in plan.chain] == ["in"]
        assert plan.windows == [(2, 3), (1, None)]
        assert plan.min_len == 4

    def test_negation_is_a_chain_node(self, small_index):
        plan = QueryPlan(_compiled(small_index, "!c"), small_index)
        assert [kind for kind, _ in plan.chain] == ["notin"]
        assert plan.min_len == 1
        assert plan.max_len == 1

    def test_empty_chain_is_pure_length_test(self, small_index):
        plan = QueryPlan(_compiled(small_index, "? ?"), small_index)
        assert plan.chain == []
        assert (plan.min_len, plan.max_len) == (2, 2)
        # exactly the two-item patterns, in rank order: a b1 (5),
        # a b2 (3), a c (2) — the one-item B (7) and b1 (4) are skipped
        assert plan.length_scan_indexes(small_index) == [1, 3, 4]

    def test_unsatisfiable_floor(self, small_index):
        plan = QueryPlan(_compiled(small_index, "(a|c)@1000"), small_index)
        assert plan.unsatisfiable

    def test_candidate_mask_none_when_unrestricted(self, small_index):
        # all-negative query: no positive postings to intersect
        plan = QueryPlan(_compiled(small_index, "!c"), small_index)
        assert plan.candidate_mask(small_index) is None

    def test_candidate_mask_intersects_postings(self, small_index):
        plan = QueryPlan(_compiled(small_index, "a b1"), small_index)
        mask = plan.candidate_mask(small_index)
        admitted = set(iter_bit_indexes(mask))
        # patterns containing BOTH a and b1: only 'a b1' (idx by rank)
        expected = {
            idx
            for idx in range(small_index._num_patterns())
            if {small_index.vocabulary.id("a"), small_index.vocabulary.id("b1")}
            <= set(small_index._pattern_at(idx)[0])
        }
        assert admitted == expected


# ----------------------------------------------------------------------
# plan cache + stats
# ----------------------------------------------------------------------


class TestPlanCache:
    def test_hits_and_compiles(self, small_index):
        before = small_index.plan_stats()
        small_index.search("a ? *{0,1}")
        mid = small_index.plan_stats()
        assert mid["compiles"] >= before["compiles"] + 1
        small_index.search("a ? *{0,1}")
        after = small_index.plan_stats()
        assert after["hits"] >= mid["hits"] + 1
        assert after["compiles"] == mid["compiles"]

    def test_eviction_cap(self):
        hierarchy = Hierarchy()
        hierarchy.add_item("a")
        index = PatternIndex(*code_patterns({("a",): 1}, hierarchy))
        for floor in range(index._PLAN_CACHE_CAP + 10):
            index.search(f"a@{floor}")
        assert index.plan_stats()["entries"] <= index._PLAN_CACHE_CAP

    def test_paths_counters(self, small_index):
        base = small_index.plan_stats()["paths"]
        small_index.search("a ?")  # positional backend: exact
        small_index.search("? ?")  # no chain: wildcard scan
        paths = small_index.plan_stats()["paths"]
        assert paths["exact"] == base["exact"] + 1
        assert paths["wildcard"] == base["wildcard"] + 1


# ----------------------------------------------------------------------
# hierarchy-aware disjunction hoisting
# ----------------------------------------------------------------------


class TestDisjunctionHoisting:
    def test_subtree_disjunction_becomes_under(self, small_index):
        vocab = small_index.vocabulary
        (token,) = _compiled(small_index, "(B|b1|b2)")
        assert token == ("under", vocab.id("B"))

    def test_partial_subtree_stays_oneof(self, small_index):
        (token,) = _compiled(small_index, "(b1|b2)")
        # B itself is missing: not a full subtree
        assert token[0] == "oneof"

    def test_singleton_disjunction_becomes_item(self, small_index):
        vocab = small_index.vocabulary
        (token,) = _compiled(small_index, "(c|c)")
        assert token == ("item", vocab.id("c"))

    def test_hoisted_answers_match_subtree_query(self, small_index):
        assert _answers(small_index, "(B|b1|b2)") == _answers(
            small_index, "^B"
        )

    def test_floor_filtered_set_hoists_too(self, small_index):
        # every member of B's subtree clears floor 0: same as ^B
        assert _compiled(small_index, "(B|b1|b2)@0") == _compiled(
            small_index, "^B"
        )


# ----------------------------------------------------------------------
# accelerated vs reference DP on every path
# ----------------------------------------------------------------------

QUERIES = (
    "a ?",
    "a * b1",
    "a *{0,1} ?",
    "? ?",
    "*",
    "!c",
    "!a ? *",
    "^B",
    "a !^B",
    "(b1|c)",
    "a +",
    "+ b1",
    "*{1,} b1",
    "?@4 ?",
)


class TestAcceleratedEqualsReference:
    @pytest.mark.parametrize("query", QUERIES)
    def test_index_paths_agree(self, small_index, query):
        accelerated = _answers(small_index, query)
        small_index._accelerate = False
        try:
            reference = _answers(small_index, query)
        finally:
            small_index._accelerate = True
        assert accelerated == reference

    def test_store_set_accelerate_toggle(self, small_index, tmp_path):
        path = tmp_path / "toggle.shards"
        write_sharded_store(
            path, small_index._frequencies, small_index.vocabulary, shards=2
        )
        with open_store(path) as store:
            accelerated = {q: _answers(store, q) for q in QUERIES}
            store.set_accelerate(False)
            reference = {q: _answers(store, q) for q in QUERIES}
            assert accelerated == reference
            # the sharded handle aggregates its shards' counters
            assert store.plan_stats()["paths"]["exact"] > 0


# ----------------------------------------------------------------------
# version-1 stores: fallback + migration
# ----------------------------------------------------------------------


class TestVersionOneStores:
    def test_v1_opens_without_positions(self, small_index, tmp_path):
        path = tmp_path / "legacy.store"
        write_store(
            path,
            small_index._frequencies,
            small_index.vocabulary,
            store_version=1,
        )
        with open_store(path) as store:
            info = store.describe()
            assert info["version"] == 1
            assert info["positional"] is False
            assert not store._has_positions()
            assert store._positional_postings_for(0) is None
            for query in QUERIES:
                assert _answers(store, query) == _answers(small_index, query)
            # concrete-token queries went through bitset prune + DP
            assert store.plan_stats()["paths"]["pruned"] > 0
            assert store.plan_stats()["paths"]["exact"] == 0

    def test_compact_migrates_v1_to_current(self, small_index, tmp_path):
        path = tmp_path / "legacy.shards"
        write_sharded_store(
            path,
            small_index._frequencies,
            small_index.vocabulary,
            shards=2,
            store_version=1,
        )
        with open_store(path) as store:
            assert all(
                s["version"] == 1 for s in store.describe()["shard_stats"]
            )
        # a delta-less compaction rewrites every shard at the current
        # format version — the documented migration path
        StoreCompactor(path).compact([])
        with open_store(path) as store:
            shard_stats = store.describe()["shard_stats"]
            assert all(s["version"] == VERSION for s in shard_stats)
            assert all(s["positional"] for s in shard_stats)
            assert VERSION >= VERSION_POSITIONAL
            for query in QUERIES:
                assert _answers(store, query) == _answers(small_index, query)
            assert store.plan_stats()["paths"]["exact"] > 0

    def test_writer_rejects_unknown_version(self, small_index, tmp_path):
        with pytest.raises(Exception):
            write_store(
                tmp_path / "bad.store",
                small_index._frequencies,
                small_index.vocabulary,
                store_version=99,
            )
