"""Unit tests for varint / run-length sequence encoding."""

import pytest

from repro.constants import BLANK
from repro.errors import EncodingError
from repro.sequence.encoding import (
    decode_sequence,
    decode_uvarint,
    encode_sequence,
    encode_uvarint,
    encoded_size,
)


class TestUvarint:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 2**21, 2**40])
    def test_roundtrip(self, value):
        data = encode_uvarint(value)
        got, offset = decode_uvarint(data)
        assert got == value
        assert offset == len(data)

    def test_small_values_single_byte(self):
        assert len(encode_uvarint(0)) == 1
        assert len(encode_uvarint(127)) == 1
        assert len(encode_uvarint(128)) == 2

    def test_negative_rejected(self):
        with pytest.raises(EncodingError):
            encode_uvarint(-1)

    def test_truncated_rejected(self):
        with pytest.raises(EncodingError):
            decode_uvarint(b"\x80")

    def test_offset_decoding(self):
        data = encode_uvarint(5) + encode_uvarint(300)
        v1, off = decode_uvarint(data, 0)
        v2, off = decode_uvarint(data, off)
        assert (v1, v2) == (5, 300)


class TestSequenceCodec:
    @pytest.mark.parametrize(
        "seq",
        [
            (),
            (0,),
            (0, 1, 2),
            (BLANK,),
            (BLANK, BLANK, BLANK),
            (5, BLANK, 7),
            (BLANK, 3, BLANK, BLANK, 4, BLANK),
            tuple(range(200)),
        ],
    )
    def test_roundtrip(self, seq):
        data = encode_sequence(seq)
        got, offset = decode_sequence(data)
        assert got == seq
        assert offset == len(data)

    def test_blank_runs_compress(self):
        long_run = (1,) + (BLANK,) * 50 + (2,)
        no_run = tuple(range(1, 53))
        assert encoded_size(long_run) < encoded_size(no_run)

    def test_frequent_items_cost_fewer_bytes(self):
        # ids are f-list ranks: frequent=small=cheap (paper Sec. 6.1)
        assert encoded_size((1, 2, 3)) < encoded_size((1000, 2000, 3000))

    def test_invalid_item_rejected(self):
        with pytest.raises(EncodingError):
            encode_sequence((-5,))

    def test_concatenated_sequences(self):
        a, b = (1, BLANK, 2), (3, 4)
        data = encode_sequence(a) + encode_sequence(b)
        got_a, off = decode_sequence(data)
        got_b, off = decode_sequence(data, off)
        assert (got_a, got_b) == (a, b)
        assert off == len(data)

    def test_encoded_size_matches(self):
        seq = (1, BLANK, BLANK, 9)
        assert encoded_size(seq) == len(encode_sequence(seq))
