"""Unit tests for generalized subsequence enumeration (paper Sec. 3.2)."""

import pytest

from repro.constants import BLANK
from repro.sequence.generate import (
    generalized_items,
    generalized_subsequences,
    pivot_of,
    pivot_subsequences,
)


@pytest.fixture
def V(fig1_vocabulary):
    return fig1_vocabulary


def enc(V, *names):
    return tuple(V.id(n) for n in names)


def decode_all(V, patterns):
    return {tuple(V.name(i) for i in p) for p in patterns}


class TestG1:
    def test_paper_g1_t4(self, V):
        """G1(T4) = {b11, a, e, b1, B} (paper Sec. 3.3)."""
        t4 = enc(V, "b11", "a", "e", "a")
        got = {V.name(i) for i in generalized_items(V, t4)}
        assert got == {"b11", "a", "e", "b1", "B"}

    def test_blanks_skipped(self, V):
        got = generalized_items(V, (V.id("a"), BLANK))
        assert got == {V.id("a")}


class TestG3T4:
    """The paper's worked example: G3(T4) for T4 = b11 a e a, γ=1, λ=3."""

    PAPER_G3_T4 = {
        # subsequences
        ("b11", "a"), ("b11", "e"), ("a", "e"), ("a", "a"), ("e", "a"),
        ("b11", "a", "e"), ("b11", "a", "a"), ("b11", "e", "a"),
        ("a", "e", "a"),
        # generalizations
        ("b1", "a"), ("b1", "e"), ("b1", "a", "e"), ("b1", "a", "a"),
        ("b1", "e", "a"), ("B", "a"), ("B", "e"), ("B", "a", "e"),
        ("B", "a", "a"), ("B", "e", "a"),
    }

    def test_exact_paper_set(self, V):
        t4 = enc(V, "b11", "a", "e", "a")
        got = generalized_subsequences(V, t4, gamma=1, lam=3)
        assert decode_all(V, got) == self.PAPER_G3_T4

    def test_size_matches_paper(self, V):
        t4 = enc(V, "b11", "a", "e", "a")
        assert len(generalized_subsequences(V, t4, gamma=1, lam=3)) == 19


class TestEnumeration:
    def test_length_bounds(self, V):
        t = enc(V, "a", "c", "a", "c")
        for s in generalized_subsequences(V, t, gamma=None, lam=3):
            assert 2 <= len(s) <= 3

    def test_min_length_one_includes_items(self, V):
        t = enc(V, "a", "c")
        got = generalized_subsequences(V, t, gamma=0, lam=2, min_length=1)
        assert (V.id("a"),) in got

    def test_gap_zero_contiguous_only(self, V):
        t = enc(V, "a", "c", "a")
        got = decode_all(V, generalized_subsequences(V, t, gamma=0, lam=2))
        assert got == {("a", "c"), ("c", "a")}

    def test_blanks_block_matching_but_count_gap(self, V):
        seq = (V.id("a"), BLANK, V.id("a"))
        assert generalized_subsequences(V, seq, gamma=0, lam=2) == set()
        got = generalized_subsequences(V, seq, gamma=1, lam=2)
        assert decode_all(V, got) == {("a", "a")}

    def test_deduplication(self, V):
        # aa arises from two embeddings but appears once
        t = enc(V, "a", "a", "a")
        got = generalized_subsequences(V, t, gamma=0, lam=2)
        assert decode_all(V, got) == {("a", "a")}


class TestPivot:
    def test_pivot_of(self, V):
        assert pivot_of(enc(V, "a", "B", "c", "B")) == V.id("c")

    def test_paper_pivot_example(self, V):
        """p(aBcB) = c under the example order (paper Sec. 3.4)."""
        assert V.name(pivot_of(enc(V, "a", "B", "c", "B"))) == "c"

    def test_gb1_t1(self, V):
        """G_{b1,2}(T1) = {ab1, b1a, b1b1, b1B, Bb1} (paper Eq. (3))."""
        t1 = enc(V, "a", "b1", "a", "b1")
        got = pivot_subsequences(V, t1, gamma=1, lam=2, pivot=V.id("b1"))
        assert decode_all(V, got) == {
            ("a", "b1"), ("b1", "a"), ("b1", "b1"), ("b1", "B"), ("B", "b1"),
        }

    def test_bb_excluded_from_gb1(self, V):
        """BB has pivot B ≠ b1 and is not a b1-pivot sequence."""
        t1 = enc(V, "a", "b1", "a", "b1")
        got = pivot_subsequences(V, t1, gamma=1, lam=2, pivot=V.id("b1"))
        assert enc(V, "B", "B") not in got

    def test_gB_t2_equivalence(self, V):
        """G_{B,2}(T2) = G_{B,2}(a b3 c c b1) = G_{B,2}(aB) = {aB} (Sec. 4.1)."""
        pivot = V.id("B")
        for seq in (
            enc(V, "a", "b3", "c", "c", "b2"),
            enc(V, "a", "b3", "c", "c", "b1"),
            enc(V, "a", "B"),
        ):
            got = pivot_subsequences(V, seq, gamma=1, lam=2, pivot=pivot)
            assert decode_all(V, got) == {("a", "B")}, seq
