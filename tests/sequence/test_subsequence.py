"""Unit tests for gap/hierarchy-aware matching (paper Sec. 2 examples)."""

import pytest

from repro.constants import BLANK
from repro.sequence.subsequence import (
    end_positions,
    is_generalized_subsequence,
    is_subsequence,
    occurrence_pairs,
    start_positions,
    support,
)


@pytest.fixture
def V(fig1_vocabulary):
    return fig1_vocabulary


def enc(V, *names):
    return tuple(V.id(n) for n in names)


class TestPlainSubsequence:
    """Paper examples for ⊆γ on T5 = a b12 d1 c."""

    def test_contiguous(self, V):
        t5 = enc(V, "a", "b12", "d1", "c")
        assert is_subsequence(enc(V, "a"), t5, 0)
        assert is_subsequence(enc(V, "a", "b12"), t5, 0)

    def test_gap_one(self, V):
        t5 = enc(V, "a", "b12", "d1", "c")
        assert is_subsequence(enc(V, "a", "d1", "c"), t5, 1)

    def test_gap_violations(self, V):
        t5 = enc(V, "a", "b12", "d1", "c")
        assert not is_subsequence(enc(V, "b12", "a"), t5, None)  # order
        assert not is_subsequence(enc(V, "a", "d1", "c"), t5, 0)  # gap

    def test_empty_pattern(self, V):
        assert is_subsequence((), enc(V, "a"), 0)

    def test_unconstrained(self, V):
        t = enc(V, "a", "c", "c", "c", "a")
        assert is_subsequence(enc(V, "a", "a"), t, None)
        assert not is_subsequence(enc(V, "a", "a"), t, 2)


class TestGeneralizedSubsequence:
    """Paper examples for ⊑γ on T5 = a b12 d1 c."""

    def test_ad1_gap1(self, V):
        t5 = enc(V, "a", "b12", "d1", "c")
        assert is_generalized_subsequence(V, enc(V, "a", "d1"), t5, 1)

    def test_aD_holds_even_though_D_absent(self, V):
        t5 = enc(V, "a", "b12", "d1", "c")
        assert is_generalized_subsequence(V, enc(V, "a", "D"), t5, 1)

    def test_specialization_does_not_match_general_item(self, V):
        # B in the data does not support pattern item b1
        t = (V.id("B"),)
        assert not is_generalized_subsequence(V, enc(V, "b1"), t, 0)

    def test_plain_subsequence_implies_generalized(self, V):
        t5 = enc(V, "a", "b12", "d1", "c")
        assert is_generalized_subsequence(V, enc(V, "a", "b12"), t5, 0)

    def test_blank_never_matches_but_occupies_gap(self, V):
        seq = (V.id("a"), BLANK, V.id("c"))
        assert not is_generalized_subsequence(V, enc(V, "a", "c"), seq, 0)
        assert is_generalized_subsequence(V, enc(V, "a", "c"), seq, 1)

    def test_gap0_contiguity(self, V):
        # Sup0(aBc, D) = {T2}: aBc ⊑0 T2 via a(1), b3→B(2), c(3).
        t2 = enc(V, "a", "b3", "c", "c", "b2")
        assert is_generalized_subsequence(V, enc(V, "a", "B", "c"), t2, 0)


class TestOccurrencePairs:
    def test_single_item(self, V):
        t1 = enc(V, "a", "b1", "a", "b1")
        assert occurrence_pairs(V, enc(V, "a"), t1, 0) == {(0, 0), (2, 2)}

    def test_pair_pattern(self, V):
        t1 = enc(V, "a", "b1", "a", "b1")
        # γ=1 forbids the (0, 3) embedding: two items sit between.
        got = occurrence_pairs(V, enc(V, "a", "b1"), t1, 1)
        assert got == {(0, 1), (2, 3)}
        assert occurrence_pairs(V, enc(V, "a", "b1"), t1, None) == {
            (0, 1),
            (0, 3),
            (2, 3),
        }

    def test_generalization_in_pairs(self, V):
        t1 = enc(V, "a", "b1", "a", "b1")
        got = occurrence_pairs(V, enc(V, "B", "a"), t1, 0)
        assert got == {(1, 2)}

    def test_empty_pattern_no_pairs(self, V):
        assert occurrence_pairs(V, (), enc(V, "a"), 0) == set()

    def test_no_match(self, V):
        assert occurrence_pairs(V, enc(V, "D"), enc(V, "a", "c"), 0) == set()

    def test_end_and_start_positions(self, V):
        t1 = enc(V, "a", "b1", "a", "b1")
        assert end_positions(V, enc(V, "a", "b1"), t1, 1) == {1, 3}
        assert start_positions(V, enc(V, "a", "b1"), t1, 1) == {0, 2}


class TestSupport:
    def test_paper_support_example(self, V, fig1_database):
        """Sup0(aBc) = {T2}, Sup1(aBc) = {T2, T5} (paper Sec. 2)."""
        db = [V.encode_sequence(t) for t in fig1_database]
        pattern = enc(V, "a", "B", "c")
        assert support(V, pattern, db, 0) == 1
        assert support(V, pattern, db, 1) == 2

    def test_frequencies_of_output_patterns(self, V, fig1_database):
        """Spot-check the paper's GSM output frequencies (σ=2, γ=1, λ=3)."""
        db = [V.encode_sequence(t) for t in fig1_database]
        expected = {
            ("a", "a"): 2,
            ("a", "b1"): 2,
            ("b1", "a"): 2,
            ("a", "B"): 3,
            ("B", "a"): 2,
            ("a", "B", "c"): 2,
            ("B", "c"): 2,
            ("a", "c"): 2,
            ("b1", "D"): 2,
            ("B", "D"): 2,
        }
        for names, freq in expected.items():
            assert support(V, enc(V, *names), db, 1) == freq, names

    def test_b1D_not_present_directly(self, V, fig1_database):
        """b1D is frequent although it never occurs literally (paper Sec. 2)."""
        for t in fig1_database:
            assert not ("b1" in t and "D" in t)
