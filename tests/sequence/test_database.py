"""Unit tests for SequenceDatabase / EncodedDatabase."""

import pytest

from repro.sequence import SequenceDatabase


class TestConstruction:
    def test_from_lists(self):
        db = SequenceDatabase([["a", "b"], ["c"]])
        assert len(db) == 2
        assert db[0] == ("a", "b")

    def test_from_strings(self):
        db = SequenceDatabase.from_strings(["a b c", "", "d e"])
        assert len(db) == 2
        assert db[1] == ("d", "e")

    def test_file_roundtrip(self, tmp_path):
        db = SequenceDatabase([["a", "b"], ["c", "d", "e"]])
        path = tmp_path / "db.txt"
        db.to_file(path)
        assert SequenceDatabase.from_file(path) == db

    def test_append(self):
        db = SequenceDatabase()
        db.append(["x"])
        assert db[0] == ("x",)

    def test_multiset_semantics(self):
        db = SequenceDatabase([["a"], ["a"]])
        assert len(db) == 2


class TestSample:
    def test_full_fraction_is_copy(self):
        db = SequenceDatabase([["a"], ["b"]])
        assert len(db.sample(1.0)) == 2

    def test_half_fraction(self):
        db = SequenceDatabase([["a"]] * 100)
        assert len(db.sample(0.5)) == 50

    def test_reproducible(self):
        db = SequenceDatabase([[str(i)] for i in range(50)])
        assert list(db.sample(0.3, seed=7)) == list(db.sample(0.3, seed=7))

    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            SequenceDatabase().sample(0.0)
        with pytest.raises(ValueError):
            SequenceDatabase().sample(1.5)


class TestStats:
    def test_fig1_stats(self, fig1_database):
        s = fig1_database.stats()
        assert s.num_sequences == 6
        assert s.max_length == 5
        assert s.total_items == 4 + 5 + 2 + 4 + 4 + 3
        assert s.avg_length == pytest.approx(22 / 6)
        assert s.unique_items == 12

    def test_empty_stats(self):
        s = SequenceDatabase().stats()
        assert s.num_sequences == 0
        assert s.avg_length == 0.0
        assert s.max_length == 0

    def test_row_rendering(self, fig1_database):
        row = fig1_database.stats().row()
        assert row["Sequences"] == 6
        assert row["Avg length"] == 3.7


class TestEncoding:
    def test_encode_decode_roundtrip(self, fig1_database, fig1_vocabulary):
        enc = fig1_database.encode(fig1_vocabulary)
        assert len(enc) == len(fig1_database)
        assert enc.decode() == fig1_database

    def test_encoded_items_are_ranks(self, fig1_database, fig1_vocabulary):
        enc = fig1_database.encode(fig1_vocabulary)
        # T3 = (a, c); a has rank 0, c rank 3
        assert enc[2] == (0, 3)

    def test_vocabulary_property(self, fig1_database, fig1_vocabulary):
        enc = fig1_database.encode(fig1_vocabulary)
        assert enc.vocabulary is fig1_vocabulary
