"""Unit tests for the string-level Hierarchy."""

import pytest

from repro.errors import HierarchyError
from repro.hierarchy import Hierarchy


def small() -> Hierarchy:
    return Hierarchy.from_edges(
        [("b1", "B"), ("b2", "B"), ("b11", "b1"), ("d1", "D")]
    )


class TestConstruction:
    def test_add_item_registers_roots(self):
        h = Hierarchy()
        h.add_item("x")
        assert "x" in h
        assert h.parents("x") == ()

    def test_add_item_with_parent(self):
        h = Hierarchy()
        h.add_item("child", parent="root")
        assert h.parents("child") == ("root",)
        assert h.children("root") == ("child",)

    def test_add_edge_is_idempotent(self):
        h = Hierarchy()
        h.add_edge("c", "p")
        h.add_edge("c", "p")
        assert h.parents("c") == ("p",)
        assert h.children("p") == ("c",)

    def test_from_parent_map(self):
        h = Hierarchy.from_parent_map({"b1": "B", "B": None})
        assert h.parents("b1") == ("B",)
        assert h.parents("B") == ()

    def test_flat(self):
        h = Hierarchy.flat(["x", "y"])
        assert h.roots() == ("x", "y")
        assert h.num_levels() == 1

    def test_empty_item_rejected(self):
        with pytest.raises(HierarchyError):
            Hierarchy().add_item("")

    def test_non_string_item_rejected(self):
        with pytest.raises(HierarchyError):
            Hierarchy().add_item(3)  # type: ignore[arg-type]

    def test_self_parent_rejected(self):
        with pytest.raises(HierarchyError):
            Hierarchy().add_edge("x", "x")

    def test_cycle_rejected(self):
        h = Hierarchy.from_edges([("a", "b"), ("b", "c")])
        with pytest.raises(HierarchyError):
            h.add_edge("c", "a")

    def test_two_cycle_rejected(self):
        h = Hierarchy.from_edges([("a", "b")])
        with pytest.raises(HierarchyError):
            h.add_edge("b", "a")


class TestQueries:
    def test_ancestors_chain(self):
        h = small()
        assert h.ancestors("b11") == ("b1", "B")

    def test_ancestors_or_self(self):
        h = small()
        assert h.ancestors_or_self("b11") == ("b11", "b1", "B")

    def test_ancestors_of_root_empty(self):
        assert small().ancestors("B") == ()

    def test_descendants(self):
        h = small()
        assert set(h.descendants("B")) == {"b1", "b2", "b11"}

    def test_generalizes_to_reflexive(self):
        assert small().generalizes_to("b1", "b1")

    def test_generalizes_to_transitive(self):
        assert small().generalizes_to("b11", "B")

    def test_generalizes_to_negative(self):
        h = small()
        assert not h.generalizes_to("B", "b1")
        assert not h.generalizes_to("b2", "b1")

    def test_unknown_item_raises(self):
        with pytest.raises(HierarchyError):
            small().parents("nope")
        with pytest.raises(HierarchyError):
            small().children("nope")

    def test_depth(self):
        h = small()
        assert h.depth("B") == 0
        assert h.depth("b1") == 1
        assert h.depth("b11") == 2


class TestStructure:
    def test_roots_and_leaves(self):
        h = small()
        assert set(h.roots()) == {"B", "D"}
        assert set(h.leaves()) == {"b2", "b11", "d1"}

    def test_intermediate_items(self):
        assert set(small().intermediate_items()) == {"b1"}

    def test_num_levels(self):
        assert small().num_levels() == 3
        assert Hierarchy().num_levels() == 0

    def test_is_forest(self):
        assert small().is_forest

    def test_dag_not_forest(self):
        h = small()
        h.add_edge("b11", "D")  # second parent
        assert not h.is_forest
        assert set(h.ancestors("b11")) == {"b1", "B", "D"}

    def test_fan_outs(self):
        assert sorted(small().fan_outs()) == [1, 1, 2]

    def test_copy_is_independent(self):
        h = small()
        c = h.copy()
        c.add_edge("z", "B")
        assert "z" not in h

    def test_parent_helper(self):
        h = small()
        assert h.parent("b1") == "B"
        assert h.parent("B") is None

    def test_parent_helper_rejects_dag(self):
        h = small()
        h.add_edge("b1", "D")
        with pytest.raises(HierarchyError):
            h.parent("b1")


class TestPaperExample:
    def test_fig1_structure(self):
        from tests.conftest import paper_hierarchy

        h = paper_hierarchy()
        assert set(h.roots()) == {"a", "B", "c", "D", "e", "f"}
        assert h.ancestors_or_self("b11") == ("b11", "b1", "B")
        assert h.generalizes_to("b11", "B")  # b11 →* B (paper Sec. 2)
        assert h.num_levels() == 3
