"""Unit tests for generalized f-list computation and total order."""

from repro.hierarchy import (
    Hierarchy,
    build_total_order,
    build_vocabulary,
    compute_generalized_flist,
)
from repro.hierarchy.flist import iter_generalized_items


class TestGeneralizedItems:
    def test_g1_includes_ancestors(self, fig1_hierarchy):
        """G1(T4) = {b11, a, e, b1, B} (paper Sec. 3.3)."""
        got = iter_generalized_items(fig1_hierarchy, ["b11", "a", "e", "a"])
        assert got == {"b11", "a", "e", "b1", "B"}

    def test_unknown_items_pass_through(self, fig1_hierarchy):
        got = iter_generalized_items(fig1_hierarchy, ["unseen"])
        assert got == {"unseen"}

    def test_duplicates_collapsed(self, fig1_hierarchy):
        got = iter_generalized_items(fig1_hierarchy, ["b1", "b1", "b2"])
        assert got == {"b1", "b2", "B"}


class TestFlist:
    def test_paper_frequencies(self, fig1_database, fig1_hierarchy):
        """Generalized f-list of Fig. 2 for the example database."""
        f = compute_generalized_flist(fig1_database, fig1_hierarchy)
        assert f["a"] == 5
        assert f["B"] == 5  # T1, T2, T4, T5, T6 via descendants
        assert f["b1"] == 4  # T1, T4, T5, T6
        assert f["c"] == 3
        assert f["D"] == 2
        assert f["e"] == 1
        assert f["b2"] == 1

    def test_hierarchy_only_items_get_zero(self):
        h = Hierarchy.from_edges([("x", "p")])
        f = compute_generalized_flist([["y"]], h)
        assert f["x"] == 0
        assert f["p"] == 0
        assert f["y"] == 1

    def test_document_frequency_not_collection_frequency(self):
        h = Hierarchy.flat(["x"])
        f = compute_generalized_flist([["x", "x", "x"], ["x"]], h)
        assert f["x"] == 2  # two sequences, not four occurrences

    def test_ancestor_counted_once_per_sequence(self):
        h = Hierarchy.from_edges([("x1", "X"), ("x2", "X")])
        f = compute_generalized_flist([["x1", "x2"]], h)
        assert f["X"] == 1


class TestTotalOrder:
    def test_frequency_descending(self):
        h = Hierarchy.flat(["lo", "hi"])
        order = build_total_order({"lo": 1, "hi": 9}, h)
        assert order == ["hi", "lo"]

    def test_tie_broken_by_level(self):
        h = Hierarchy.from_edges([("child", "parent")])
        order = build_total_order({"child": 3, "parent": 3}, h)
        assert order == ["parent", "child"]

    def test_tie_broken_by_name_last(self):
        h = Hierarchy.flat(["zz", "aa"])
        order = build_total_order({"zz": 3, "aa": 3}, h)
        assert order == ["aa", "zz"]

    def test_paper_order(self, fig1_database, fig1_hierarchy):
        v = build_vocabulary(fig1_database, fig1_hierarchy)
        assert v.id("a") < v.id("B") < v.id("b1") < v.id("c") < v.id("D")

    def test_reuse_precomputed_frequencies(self, fig1_database, fig1_hierarchy):
        f = compute_generalized_flist(fig1_database, fig1_hierarchy)
        v1 = build_vocabulary(fig1_database, fig1_hierarchy)
        v2 = build_vocabulary(fig1_database, fig1_hierarchy, frequencies=f)
        assert [v1.name(i) for i in range(len(v1))] == [
            v2.name(i) for i in range(len(v2))
        ]
