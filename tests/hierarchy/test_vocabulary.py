"""Unit tests for the encoded Vocabulary."""

import pytest

from repro.constants import BLANK, NO_PARENT
from repro.errors import HierarchyError, UnknownItemError
from repro.hierarchy import Hierarchy, Vocabulary, build_vocabulary


def simple_vocab() -> Vocabulary:
    # order: B < b1 < b2 < b11 (already hierarchy-compatible)
    h = Hierarchy.from_edges([("b1", "B"), ("b2", "B"), ("b11", "b1")])
    return Vocabulary(["B", "b1", "b2", "b11"], h, [10, 6, 3, 2])


class TestBasics:
    def test_id_roundtrip(self):
        v = simple_vocab()
        for name in ("B", "b1", "b2", "b11"):
            assert v.name(v.id(name)) == name

    def test_len_and_contains(self):
        v = simple_vocab()
        assert len(v) == 4
        assert "b1" in v
        assert "zzz" not in v

    def test_unknown_name(self):
        with pytest.raises(UnknownItemError):
            simple_vocab().id("zzz")

    def test_unknown_id(self):
        with pytest.raises(UnknownItemError):
            simple_vocab().name(99)

    def test_blank_renders_as_underscore(self):
        assert simple_vocab().name(BLANK) == "_"

    def test_frequencies(self):
        v = simple_vocab()
        assert v.frequency(v.id("B")) == 10
        assert v.frequency_of("b11") == 2

    def test_frequent_ids(self):
        v = simple_vocab()
        assert v.frequent_ids(3) == [0, 1, 2]
        assert v.frequent_ids(100) == []

    def test_duplicate_names_rejected(self):
        h = Hierarchy.flat(["x"])
        with pytest.raises(HierarchyError):
            Vocabulary(["x", "x"], h, [1, 1])

    def test_misaligned_frequencies_rejected(self):
        h = Hierarchy.flat(["x"])
        with pytest.raises(HierarchyError):
            Vocabulary(["x"], h, [1, 2])

    def test_order_must_respect_hierarchy(self):
        h = Hierarchy.from_edges([("b1", "B")])
        with pytest.raises(HierarchyError):
            Vocabulary(["b1", "B"], h, [5, 5])  # child before parent


class TestStructure:
    def test_parent_ids(self):
        v = simple_vocab()
        assert v.parent_id(v.id("b11")) == v.id("b1")
        assert v.parent_id(v.id("B")) == NO_PARENT

    def test_ancestors_or_self_ascending(self):
        v = simple_vocab()
        b11 = v.id("b11")
        assert v.ancestors_or_self(b11) == (v.id("B"), v.id("b1"), b11)

    def test_ancestors_of_blank_empty(self):
        assert simple_vocab().ancestors_or_self(BLANK) == ()

    def test_generalizes_to(self):
        v = simple_vocab()
        assert v.generalizes_to(v.id("b11"), v.id("B"))
        assert v.generalizes_to(v.id("b1"), v.id("b1"))
        assert not v.generalizes_to(v.id("B"), v.id("b1"))
        assert not v.generalizes_to(v.id("b2"), v.id("b1"))

    def test_generalizes_to_blank_never_matches(self):
        v = simple_vocab()
        assert not v.generalizes_to(BLANK, v.id("B"))
        assert not v.generalizes_to(v.id("b1"), BLANK)

    def test_depth(self):
        v = simple_vocab()
        assert v.depth(v.id("B")) == 0
        assert v.depth(v.id("b11")) == 2

    def test_item_not_in_hierarchy_is_isolated_root(self):
        h = Hierarchy.flat(["x"])
        v = Vocabulary(["x", "y"], h, [2, 1])
        assert v.ancestors_or_self(v.id("y")) == (v.id("y"),)


class TestLargestRelevantAncestor:
    def test_relevant_item_returns_self(self):
        v = simple_vocab()
        assert v.largest_relevant_ancestor(v.id("b1"), v.id("b2")) == v.id("b1")

    def test_irrelevant_item_generalizes(self):
        v = simple_vocab()
        # pivot b1: b11 > b1 generalizes to b1 itself
        assert v.largest_relevant_ancestor(v.id("b11"), v.id("b1")) == v.id("b1")

    def test_irrelevant_item_generalizes_to_largest(self):
        v = simple_vocab()
        # pivot b2: b11's qualifying ancestors are B and b1; largest is b1
        assert v.largest_relevant_ancestor(v.id("b11"), v.id("b2")) == v.id("b1")

    def test_no_relevant_ancestor_is_blank(self):
        v = simple_vocab()
        # pivot B (id 0): b2 has only ancestor B; B ≤ B so generalizes to B
        assert v.largest_relevant_ancestor(v.id("b2"), v.id("B")) == v.id("B")
        # an isolated item with no qualifying ancestor
        h = Hierarchy.flat(["x", "y"])
        v2 = Vocabulary(["x", "y"], h, [5, 1])
        assert v2.largest_relevant_ancestor(v2.id("y"), v2.id("x")) == BLANK

    def test_blank_input(self):
        assert simple_vocab().largest_relevant_ancestor(BLANK, 0) == BLANK

    def test_dag_safe_fallback(self):
        # x has two incomparable parents p and q; replacing x by either would
        # lose the other, so the item must be kept.
        h = Hierarchy()
        h.add_edge("x", "p")
        h.add_edge("x", "q")
        h.add_item("w")
        v = Vocabulary(["p", "q", "w", "x"], h, [5, 4, 3, 2])
        x, w = v.id("x"), v.id("w")
        assert v.largest_relevant_ancestor(x, w) == x

    def test_dag_exact_when_chain_within_threshold(self):
        # x -> {p, q}, q -> p: ancestors {p, q} are a chain; pivot ≥ q allows
        # exact replacement by q.
        h = Hierarchy()
        h.add_edge("x", "p")
        h.add_edge("x", "q")
        h.add_edge("q", "p")
        h.add_item("w")
        v = Vocabulary(["p", "q", "w", "x"], h, [5, 4, 3, 2])
        assert v.largest_relevant_ancestor(v.id("x"), v.id("w")) == v.id("q")


class TestSequences:
    def test_encode_decode_roundtrip(self):
        v = simple_vocab()
        seq = ("b1", "B", "b11")
        assert v.decode_sequence(v.encode_sequence(seq)) == seq

    def test_render_with_blank(self):
        v = simple_vocab()
        assert v.render([v.id("b1"), BLANK, v.id("B")]) == "b1 _ B"


class TestPaperOrder:
    def test_fig2_flist_order(self, fig1_database, fig1_hierarchy):
        """Fig. 2: a < B < b1 < c < D with frequencies 5,5,4,3,2."""
        v = build_vocabulary(fig1_database, fig1_hierarchy)
        names = [v.name(i) for i in range(5)]
        assert names == ["a", "B", "b1", "c", "D"]
        assert [v.frequency(i) for i in range(5)] == [5, 5, 4, 3, 2]

    def test_fig2_infrequent_items_are_larger(self, fig1_vocabulary):
        v = fig1_vocabulary
        for rare in ("b2", "b3", "b11", "b12", "b13", "d1", "d2", "e", "f"):
            assert v.id(rare) > v.id("D")
            assert v.frequency_of(rare) == 1

    def test_order_property_parent_smaller(self, fig1_vocabulary):
        """w2 → w1 implies w1 < w2 (paper Sec. 3.4)."""
        v = fig1_vocabulary
        for name in ("b1", "b2", "b3", "b11", "b12", "b13", "d1", "d2"):
            item = v.id(name)
            for anc in v.ancestors(item):
                assert anc < item
