"""Extension — distributed serving: router fan-out latency.

The distributed tier answers queries by fanning out to shard servers
over sockets and k-way merging their rank-ordered partials.  This
bench measures what that buys and costs against the same manifest
served in-process:

* **fan-out latency** — p50/p95/p99 per query class through a
  2-server cluster on localhost (socket hop + per-server partial
  search + merge), vs the in-process ``ShardedPatternStore``;
* **failover overhead** — the same battery with one server down and a
  full replica absorbing its shards (every request to the dead half
  rides the retry wave).

Byte-identity between router and mono answers is asserted on every
measured request, so the numbers can't come from serving different
answers.  Results persist to ``BENCH_router.json`` (override with
``LASH_BENCH_ROUTER_OUT``) for the perf trajectory: per-class and
overall percentiles in milliseconds.
"""

import json
import os
import statistics
import sys
import time

if __name__ == "__main__" and "--quick" in sys.argv:
    # CI smoke entry point: shrink the corpus before conftest reads it
    os.environ.setdefault("REPRO_BENCH_SCALE", "0.1")

from repro import Lash, MiningParams
from repro.serve import open_store
from repro.serve.distributed import ShardServer
from repro.serve.router import ClusterMap, RouterBackend, ServerSpec
from conftest import NYT_SIGMA_LOW
from reporting import BenchReport

NUM_SHARDS = 4
ROUNDS = max(5, int(30 * float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))))
OUT_PATH = os.environ.get("LASH_BENCH_ROUTER_OUT", "BENCH_router.json")

QUERIES = {
    "wildcard pair": "? ?",
    "anchored item": "the ^ADJ ?",
    "subtree walk": "^PRON ^VERB",
    "gap + floor": "^DET *{0,2} ?@5",
    "negated slot": "!the ^NOUN",
}


def _percentiles(samples):
    ordered = sorted(samples)

    def pct(p):
        index = min(len(ordered) - 1, int(round(p * (len(ordered) - 1))))
        return round(ordered[index] * 1000, 3)

    return {"p50": pct(0.50), "p95": pct(0.95), "p99": pct(0.99)}


def _measure(backend, reference, tokens_by_label, rounds):
    """Latency samples per query class; every answer checked against
    the in-process reference so the timings describe identical work."""
    samples = {label: [] for label in tokens_by_label}
    expected = {
        label: [
            (m.pattern, m.frequency) for m in reference.search(query)
        ]
        for label, query in tokens_by_label.items()
    }
    for _ in range(rounds):
        for label, query in tokens_by_label.items():
            start = time.perf_counter()
            got = [
                (m.pattern, m.frequency) for m in backend.search(query)
            ]
            samples[label].append(time.perf_counter() - start)
            assert got == expected[label], label
    return samples


def test_router_fanout_latency(nyt, tmp_path):
    report = BenchReport(
        "Ext. distributed serving",
        "router fan-out vs in-process sharded store (ms per query)",
    )
    hierarchy = nyt.hierarchy("CLP")
    result = Lash(MiningParams(NYT_SIGMA_LOW, 0, 4)).mine(
        nyt.database, hierarchy
    )
    store_path = tmp_path / "patterns.shards"
    result.to_store(store_path, shards=NUM_SHARDS)

    half = NUM_SHARDS // 2
    lower, upper = list(range(half)), list(range(half, NUM_SHARDS))
    s1 = ShardServer(store_path, shard_subset=lower, http_port=None)
    s2 = ShardServer(store_path, shard_subset=upper, http_port=None)
    replica = ShardServer(store_path, http_port=None)
    router = None
    results: dict = {}
    try:
        for server in (s1, s2, replica):
            server.start()
        placement = {}
        specs = []
        for server, shards in (
            (s1, lower),
            (s2, upper),
            (replica, range(NUM_SHARDS)),
        ):
            spec = ServerSpec(*server.address)
            specs.append(spec)
            for shard in shards:
                placement.setdefault(shard, []).append(spec.key)
        cluster = ClusterMap(
            specs, num_shards=NUM_SHARDS, placement=placement
        )
        router = RouterBackend(cluster)

        with open_store(store_path) as mono:
            mono_samples = _measure(mono, mono, QUERIES, ROUNDS)
            router_samples = _measure(router, mono, QUERIES, ROUNDS)
            s1.stop()  # half the shards now only live on the replica
            failover_samples = _measure(router, mono, QUERIES, ROUNDS)
            assert router.take_partial() is None

        for label in QUERIES:
            mono_pct = _percentiles(mono_samples[label])
            routed_pct = _percentiles(router_samples[label])
            failed_pct = _percentiles(failover_samples[label])
            results[label] = {
                "mono": mono_pct,
                "router": routed_pct,
                "failover": failed_pct,
            }
            report.add(
                label,
                {
                    "mono_p50_ms": mono_pct["p50"],
                    "router_p50_ms": routed_pct["p50"],
                    "router_p95_ms": routed_pct["p95"],
                    "router_p99_ms": routed_pct["p99"],
                    "failover_p50_ms": failed_pct["p50"],
                },
            )

        flat = [s for label in QUERIES for s in router_samples[label]]
        overall = _percentiles(flat)
        results["_overall"] = {"router": overall}
        report.add(
            "overall",
            {
                "mono_p50_ms": _percentiles(
                    [s for v in mono_samples.values() for s in v]
                )["p50"],
                "router_p50_ms": overall["p50"],
                "router_p95_ms": overall["p95"],
                "router_p99_ms": overall["p99"],
                "failover_p50_ms": _percentiles(
                    [s for v in failover_samples.values() for s in v]
                )["p50"],
            },
        )
    finally:
        if router is not None:
            router.close()
        for server in (s1, s2, replica):
            server.stop()

    payload = {
        "bench": "router_fanout",
        "patterns": len(result),
        "num_shards": NUM_SHARDS,
        "servers": 2,
        "replication": "full replica",
        "rounds": ROUNDS,
        "unit": "ms",
        "queries": results,
    }
    with open(OUT_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\nwrote {OUT_PATH}", file=sys.__stdout__)
    report.emit()


if __name__ == "__main__":
    # `python benchmarks/bench_router_fanout.py [--quick]` runs this
    # file through pytest — `--quick` is the CI distributed smoke mode
    import pytest

    argv = [arg for arg in sys.argv[1:] if arg != "--quick"]
    sys.exit(pytest.main([__file__, "-q", *argv]))
