"""Fig. 5(c) — effect of maximum length λ (AMZN-h8, γ=1).

Paper: λ has little impact on map time but reduce time (and output size)
grows significantly with λ.  Shape target: reduce time grows from λ=3 to
λ=7; map time stays within a small factor.
"""

from repro import Lash, MiningParams
from conftest import AMZN_SIGMA
from reporting import BenchReport


def test_fig5c_effect_of_length(benchmark, amzn, fig5_lambda_runs):
    report = BenchReport("Fig 5(c)", "effect of length (AMZN-h8, g=1)")
    phase_rows = {}
    for lam, result in sorted(fig5_lambda_runs.items()):
        times = result.phase_times()
        phase_rows[lam] = times
        report.add(f"lambda={lam}", {
            **times.row(), "Patterns": len(result),
        })
    report.emit()

    benchmark.pedantic(
        lambda: Lash(MiningParams(AMZN_SIGMA, 1, 3)).mine(
            amzn.database, amzn.hierarchy(8)
        ),
        rounds=1, iterations=1,
    )

    assert phase_rows[7].reduce_s > phase_rows[3].reduce_s
    map_growth = phase_rows[7].map_s / max(phase_rows[3].map_s, 1e-9)
    reduce_growth = phase_rows[7].reduce_s / max(phase_rows[3].reduce_s, 1e-9)
    assert reduce_growth > map_growth
