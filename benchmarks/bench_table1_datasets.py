"""Table 1 — dataset characteristics.

Paper reports NYT: 49.6M sequences, avg 21.1, max 15199, 1.05G items, 2.76M
unique; AMZN: 6.6M sequences, avg 4.5, max 25630, 29.7M items, 2.37M unique.
Our synthetic stand-ins are smaller but preserve the contrasts: NYT-like
sentences are longer on average than AMZN-like sessions, AMZN has a long
session-length tail relative to its mean.
"""

from reporting import BenchReport


def test_table1_dataset_characteristics(benchmark, nyt, amzn):
    report = BenchReport("Table 1", "dataset characteristics")

    nyt_stats = benchmark(nyt.database.stats)
    amzn_stats = amzn.database.stats()

    report.add("NYT", nyt_stats.row())
    report.add("AMZN", amzn_stats.row())
    report.emit()

    # shape checks mirroring the paper's contrasts
    assert nyt_stats.avg_length > amzn_stats.avg_length
    assert amzn_stats.max_length > 3 * amzn_stats.avg_length
    assert nyt_stats.num_sequences > 0 and amzn_stats.num_sequences > 0
