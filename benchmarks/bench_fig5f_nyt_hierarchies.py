"""Fig. 5(f) — effect of hierarchy type (NYT, σ fixed, γ=0, λ=5).

Paper: L and P both have two levels yet P's reduce phase is far more
expensive (few roots with huge fan-out and very frequent root items ⇒
bigger partitions and larger outputs); adding levels (LP, CLP) raises both
map and reduce times.  Shape targets: P total ≫ L total; CLP ≥ LP ≥ L.
"""

from repro import Lash, MiningParams
from conftest import NYT_SIGMA_LOW
from reporting import BenchReport

VARIANTS = ["L", "P", "LP", "CLP"]


def test_fig5f_effect_of_hierarchy_type(benchmark, nyt):
    report = BenchReport("Fig 5(f)", "effect of hierarchy type (NYT)")
    totals = {}
    for variant in VARIANTS:
        result = Lash(MiningParams(NYT_SIGMA_LOW, 0, 5)).mine(
            nyt.database, nyt.hierarchy(variant)
        )
        times = result.phase_times()
        totals[variant] = times
        report.add(f"NYT-{variant}", {
            **times.row(), "Patterns": len(result),
        })
    report.emit()

    benchmark.pedantic(
        lambda: Lash(MiningParams(NYT_SIGMA_LOW, 0, 5)).mine(
            nyt.database, nyt.hierarchy("L")
        ),
        rounds=1, iterations=1,
    )

    # same depth, very different cost: P ≫ L (root fan-out/frequency)
    assert totals["P"].reduce_s > totals["L"].reduce_s
    assert totals["P"].total_s > totals["L"].total_s
    # deeper hierarchies cost more than L
    assert totals["CLP"].total_s > totals["L"].total_s
    assert totals["LP"].total_s > totals["L"].total_s
