"""Table 2 — hierarchy characteristics.

Paper: NYT-L has 2.5M roots with avg fan-out 2.7; NYT-P has 22 roots with
avg fan-out 124k; LP/CLP add intermediate levels.  AMZN h2→h8 grows the
intermediate-item count (0 → 11630) while leaf/root counts stay nearly
constant.  The synthetic hierarchies must reproduce those structural
contrasts.
"""

from repro.datasets import hierarchy_stats
from reporting import BenchReport


def test_table2_hierarchy_characteristics(benchmark, nyt, amzn):
    report = BenchReport("Table 2", "hierarchy characteristics")

    nyt_rows = {
        variant: hierarchy_stats(nyt.hierarchy(variant))
        for variant in ("L", "P", "LP", "CLP")
    }
    amzn_rows = {
        levels: hierarchy_stats(amzn.hierarchy(levels))
        for levels in (2, 3, 4, 8)
    }
    benchmark(lambda: hierarchy_stats(nyt.hierarchy("CLP")))

    for variant, stats in nyt_rows.items():
        report.add(f"NYT-{variant}", stats.row())
    for levels, stats in amzn_rows.items():
        report.add(f"AMZN-h{levels}", stats.row())
    report.emit()

    # paper's contrasts
    assert nyt_rows["L"].root_items > 50 * nyt_rows["P"].root_items
    assert nyt_rows["P"].avg_fan_out > 20 * nyt_rows["L"].avg_fan_out
    assert nyt_rows["L"].levels == nyt_rows["P"].levels == 2
    assert nyt_rows["LP"].levels == 3 and nyt_rows["CLP"].levels == 4
    assert nyt_rows["CLP"].intermediate_items > nyt_rows["LP"].intermediate_items

    inter = [amzn_rows[k].intermediate_items for k in (2, 3, 4, 8)]
    assert inter[0] == 0
    assert inter == sorted(inter)
    # fan-out shrinks as depth spreads products over subcategories
    assert amzn_rows[2].avg_fan_out > amzn_rows[8].avg_fan_out
