"""Fig. 5(a) — effect of minimum support σ (AMZN-h8, γ=1, λ=5).

Paper: raising σ from 10 to 10000 shrinks every phase — map time falls
because fewer low-level items stay frequent (the effective hierarchy depth
shrinks and rewrites cheapen), reduce time falls because mining gets
cheaper.  Shape target: total time decreases monotonically-ish with σ,
with the reduce phase dropping fastest.
"""

from repro import Lash, MiningParams
from conftest import AMZN_SIGMA
from reporting import BenchReport

SIGMAS = [AMZN_SIGMA, 2 * AMZN_SIGMA, 8 * AMZN_SIGMA, 32 * AMZN_SIGMA]


def test_fig5a_effect_of_support(benchmark, amzn):
    report = BenchReport("Fig 5(a)", "effect of support (AMZN-h8, g=1, l=5)")
    phase_rows = {}
    for sigma in SIGMAS:
        result = Lash(MiningParams(sigma, 1, 5)).mine(
            amzn.database, amzn.hierarchy(8)
        )
        times = result.phase_times()
        phase_rows[sigma] = times
        report.add(f"sigma={sigma}", {
            **times.row(), "Patterns": len(result),
        })
    report.emit()

    benchmark.pedantic(
        lambda: Lash(MiningParams(SIGMAS[-1], 1, 5)).mine(
            amzn.database, amzn.hierarchy(8)
        ),
        rounds=1, iterations=1,
    )

    lowest, highest = phase_rows[SIGMAS[0]], phase_rows[SIGMAS[-1]]
    assert highest.total_s < lowest.total_s
    assert highest.reduce_s < lowest.reduce_s
    assert highest.map_s <= lowest.map_s * 1.25  # map shrinks (or holds)
