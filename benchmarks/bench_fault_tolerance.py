"""Fault tolerance — LASH under injected task failures (Sec. 3.1).

Hadoop *"transparently handles failures in the cluster"*; the engine
reproduces that semantics.  This bench mines NYT-LP under increasing
per-attempt failure probabilities and reports the failure bookkeeping.

Shape targets: the mined answer is identical at every failure rate; failed
attempts and wasted seconds grow with the rate.
"""

from repro import Lash, MiningParams
from repro.mapreduce import FailurePlan
from conftest import NYT_SIGMA_HIGH
from reporting import BenchReport

RATES = [0.0, 0.1, 0.3]


def test_fault_tolerance(benchmark, nyt):
    report = BenchReport(
        "Fault tolerance", "LASH under injected task failures, NYT-LP"
    )
    params = MiningParams(NYT_SIGMA_HIGH, 0, 5)
    hierarchy = nyt.hierarchy("LP")

    def sweep():
        rows = {}
        reference = None
        for rate in RATES:
            plan = (
                FailurePlan(probability=rate, seed=13, max_attempts=40)
                if rate
                else None
            )
            result = Lash(params, failure_plan=plan).mine(
                nyt.database, hierarchy
            )
            if reference is None:
                reference = result.decoded()
            else:
                assert result.decoded() == reference, rate
            metrics = result.total_metrics()
            counters = result.counters
            rows[rate] = {
                "Failed maps": counters["FAILED_MAP_TASKS"],
                "Failed reduces": counters["FAILED_REDUCE_TASKS"],
                "Wasted (s)": metrics.wasted_s(),
                "Useful (s)": metrics.serial_phase_times().total_s,
            }
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for rate, row in rows.items():
        report.add(f"p={rate}", {
            "Failed maps": row["Failed maps"],
            "Failed reduces": row["Failed reduces"],
            "Wasted (s)": round(row["Wasted (s)"], 3),
            "Useful (s)": round(row["Useful (s)"], 2),
        })
    report.emit()

    assert rows[0.0]["Failed maps"] == rows[0.0]["Failed reduces"] == 0
    assert rows[0.3]["Failed maps"] > rows[0.0]["Failed maps"]
    assert rows[0.3]["Wasted (s)"] > 0.0
