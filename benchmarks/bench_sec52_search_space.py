"""Sec. 5.2 analysis — PSM's worst-case search-space fraction.

Two parts:

1. **Analytic**: the paper's formula ``1 − Σ(k−1)^l / Σk^l`` for the
   fraction of the BFS/DFS space PSM explores, including the worked
   example k=100,000, λ=5 → 0.005%.
2. **Measured**: the paper's Eq. (4) partition, on which DFS evaluates
   exactly 37 candidate sequences (5 items + 17 + 13 + 2) while PSM
   explores roughly a third of that — reproduced with the real miners.
   (The paper quotes 13 nodes for PSM with its Fig. 3 node-counting
   convention; under this repository's convention — every
   support-evaluated candidate counts once, which is what pins DFS at
   exactly 37 — PSM evaluates 18 candidates, 14 with the index.)
"""

from repro import DfsMiner, MiningParams, PivotSequenceMiner, build_vocabulary
from repro.analysis import psm_explored_fraction, psm_search_space, total_sequences
from repro.constants import BLANK
from repro.datasets import (
    eq4_partition_sequences,
    example_database,
    example_hierarchy,
)
from reporting import BenchReport

ANALYTIC = [(10, 3), (100, 4), (1_000, 4), (100_000, 5), (1_000_000, 5)]


def test_sec52_analytic_fraction(benchmark):
    report = BenchReport(
        "Sec 5.2 analytic", "worst-case search space, PSM vs BFS/DFS"
    )
    rows = benchmark.pedantic(
        lambda: {
            (k, lam): (
                total_sequences(k, lam),
                psm_search_space(k, lam),
                psm_explored_fraction(k, lam),
            )
            for k, lam in ANALYTIC
        },
        rounds=1, iterations=1,
    )
    for (k, lam), (total, pivot_only, fraction) in rows.items():
        report.add(f"k={k}, lambda={lam}", {
            "BFS/DFS space": total,
            "PSM space": pivot_only,
            "Explored (%)": round(100 * fraction, 5),
        })
    report.emit()

    # the paper's example: k=100,000 and lambda=5 => 0.005%
    assert round(100 * rows[(100_000, 5)][2], 3) == 0.005
    # the fraction shrinks with k
    assert rows[(1_000_000, 5)][2] < rows[(100_000, 5)][2]


def test_sec52_measured_on_eq4_partition(benchmark):
    report = BenchReport(
        "Sec 5.2 measured", "candidates on the Eq. (4) partition, pivot D"
    )
    hierarchy = example_hierarchy()
    vocabulary = build_vocabulary(example_database(), hierarchy)
    params = MiningParams(sigma=2, gamma=1, lam=4)
    partition = {
        tuple(
            BLANK if item == "_" else vocabulary.id(item) for item in seq
        ): 1
        for seq in eq4_partition_sequences()
    }
    pivot = vocabulary.id("D")

    def sweep():
        counts = {}
        outputs = {}
        for name, miner in [
            ("DFS", DfsMiner(vocabulary, params)),
            ("PSM", PivotSequenceMiner(vocabulary, params, index_mode="none")),
            (
                "PSM+Index",
                PivotSequenceMiner(vocabulary, params, index_mode="exact"),
            ),
        ]:
            outputs[name] = miner.mine_partition(dict(partition), pivot)
            counts[name] = miner.stats.candidates
        return counts, outputs

    counts, outputs = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for name in counts:
        report.add(name, {
            "Candidates": counts[name],
            "Outputs": len(outputs[name]),
        })
    report.emit()

    # the paper's worked number: DFS explores exactly 37 candidates
    assert counts["DFS"] == 37
    # PSM explores roughly a third of the DFS space; the index prunes more
    assert counts["PSM"] <= counts["DFS"] // 2
    assert counts["PSM+Index"] <= counts["PSM"]
    assert outputs["DFS"] == outputs["PSM"] == outputs["PSM+Index"]
    # frequent pivot sequences of the example (Sec. 5.2)
    decoded = {
        tuple(vocabulary.name(i) for i in s): f
        for s, f in outputs["PSM"].items()
    }
    assert decoded == {
        ("a", "D"): 4, ("D", "B"): 2, ("c", "a", "D"): 2, ("a", "D", "B"): 2,
    }
