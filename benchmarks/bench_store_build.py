"""Extension — incremental store builds: merge vs full rebuild.

A serving index must absorb new mining runs; this bench quantifies the
two ways to do it.  A corpus arrives in batches; after each batch the
serving store must cover everything seen so far:

* **full rebuild** — re-mine the accumulated corpus and rewrite the
  store from scratch (cost grows with history);
* **incremental merge** — mine only the new batch and
  ``merge_stores`` its store into the existing one (cost grows with
  the pattern set, not with re-mining history).

Shape targets: per-batch merge cost stays well below per-batch rebuild
cost once history accumulates, while both regimes produce
byte-identical stores (σ=1, so merging mined results is exact).  A
sharded variant shows the merge writing shard sets at comparable cost.
"""

import os
import sys
import time

if __name__ == "__main__" and "--quick" in sys.argv:
    # the CI smoke entry point: shrink the session corpora; must land
    # before the conftest import below reads the scale knob
    os.environ.setdefault("REPRO_BENCH_SCALE", "0.1")

from repro import Lash, MiningParams
from repro.sequence import SequenceDatabase
from repro.serve import merge_stores, open_store
from conftest import NYT_SENTENCES
from reporting import BenchReport

BATCHES = 4
SIGMA = 1
PARAMS = MiningParams(SIGMA, 0, 3)


def _mine(sequences, hierarchy):
    return Lash(PARAMS).mine(SequenceDatabase(sequences), hierarchy)


def test_merge_vs_full_rebuild(nyt, tmp_path):
    report = BenchReport(
        "Ext. store build",
        "incremental merge vs full rebuild per corpus batch",
    )
    hierarchy = nyt.hierarchy("CLP")
    sequences = list(nyt.database)
    batch_size = max(1, len(sequences) // BATCHES)
    batches = [
        sequences[i:i + batch_size]
        for i in range(0, batch_size * BATCHES, batch_size)
    ]

    served = tmp_path / "serving.store"
    seen: list = []
    for number, batch in enumerate(batches, start=1):
        seen.extend(batch)

        start = time.perf_counter()
        full = _mine(seen, hierarchy)
        full_path = tmp_path / f"full{number}.store"
        full.to_store(full_path)
        rebuild_s = time.perf_counter() - start

        start = time.perf_counter()
        delta = _mine(batch, hierarchy)
        delta_path = tmp_path / f"delta{number}.store"
        delta.to_store(delta_path)
        if number == 1:
            delta_path.replace(served)
        else:
            merge_stores([served, delta_path], served)
        merge_s = time.perf_counter() - start

        assert served.read_bytes() == full_path.read_bytes()
        report.add(
            f"batch {number}/{BATCHES}",
            {
                "seen_seqs": len(seen),
                "patterns": len(full),
                "rebuild_s": round(rebuild_s, 3),
                "merge_s": round(merge_s, 3),
                "speedup": round(rebuild_s / merge_s, 2),
            },
        )
    report.emit()


def test_sharded_merge_build(nyt, tmp_path):
    """Merging into a shard set costs about the same as a single file
    and serves identical answers."""
    report = BenchReport(
        "Ext. sharded build", "merge target: single file vs 4-shard set"
    )
    hierarchy = nyt.hierarchy("CLP")
    sequences = list(nyt.database)
    half = len(sequences) // 2
    first = _mine(sequences[:half], hierarchy)
    second = _mine(sequences[half:], hierarchy)
    first_path = tmp_path / "first.store"
    second_path = tmp_path / "second.store"
    first.to_store(first_path)
    second.to_store(second_path)

    timings = {}
    single_path = tmp_path / "merged.store"
    start = time.perf_counter()
    merge_stores([first_path, second_path], single_path)
    timings["single"] = time.perf_counter() - start

    sharded_path = tmp_path / "merged.shards"
    start = time.perf_counter()
    merge_stores([first_path, second_path], sharded_path, shards=4)
    timings["4 shards"] = time.perf_counter() - start

    with open_store(single_path) as single, (
        open_store(sharded_path)
    ) as sharded:
        assert list(sharded) == list(single)
        for label, seconds in timings.items():
            report.add(
                label,
                {
                    "merge_s": round(seconds, 3),
                    "patterns": len(single),
                    "sentences": NYT_SENTENCES,
                },
            )
    report.emit()


if __name__ == "__main__":
    # `python benchmarks/bench_store_build.py [--quick]` runs this file
    # through pytest — `--quick` is the store-pipeline CI smoke mode
    import pytest

    argv = [arg for arg in sys.argv[1:] if arg != "--quick"]
    sys.exit(pytest.main([__file__, "-q", *argv]))
