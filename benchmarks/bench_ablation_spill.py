"""Ablation — in-memory vs external (disk-backed) shuffle (NYT-CLP).

Hadoop shuffles through local disk: map outputs are sorted into run files
and reducers stream a merge of their partition's runs.  The engine
reproduces that pipeline behind ``spill_dir``
(:mod:`repro.mapreduce.spill`); this bench verifies the answer is
unchanged and measures what the disk round-trip costs on the main LASH
job.

Shape targets: identical mined output and identical logical shuffle
bytes; spill bytes within a small factor of shuffle bytes (pickle framing
vs varint wire format); external shuffle time above in-memory but same
order of magnitude.
"""

from repro import Lash, MiningParams
from repro.mapreduce import SPILL_BYTES, SPILLED_RECORDS
from conftest import NYT_SIGMA_LOW
from reporting import BenchReport


def test_ablation_spill(benchmark, nyt, tmp_path_factory):
    report = BenchReport(
        "Ablation spill", "in-memory vs external shuffle, NYT-CLP"
    )
    params = MiningParams(NYT_SIGMA_LOW, 0, 5)
    hierarchy = nyt.hierarchy("CLP")
    spill_dir = tmp_path_factory.mktemp("shuffle-spills")

    def sweep():
        rows = {}
        memory = Lash(params).mine(nyt.database, hierarchy)
        spilled = Lash(params, spill_dir=spill_dir).mine(
            nyt.database, hierarchy
        )
        assert spilled.decoded() == memory.decoded()
        for label, result in (("in-memory", memory), ("external", spilled)):
            rows[label] = {
                "Shuffle MB": result.counters["SHUFFLE_BYTES"] / 1e6,
                "Spill MB": result.counters[SPILL_BYTES] / 1e6,
                "Spilled records": result.counters[SPILLED_RECORDS],
                "Shuffle (s)": result.metrics.shuffle_s,
                "Reduce (s)": result.phase_times().reduce_s,
            }
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for label, row in rows.items():
        report.add(label, {
            "Shuffle MB": round(row["Shuffle MB"], 2),
            "Spill MB": round(row["Spill MB"], 2),
            "Spilled records": row["Spilled records"],
            "Shuffle (s)": round(row["Shuffle (s)"], 3),
            "Reduce (s)": round(row["Reduce (s)"], 2),
        })
    report.emit()

    assert rows["in-memory"]["Spill MB"] == 0
    assert rows["external"]["Spill MB"] > 0
    # the logical shuffle volume is identical either way
    assert rows["external"]["Shuffle MB"] == rows["in-memory"]["Shuffle MB"]
