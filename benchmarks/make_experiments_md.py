"""Assemble EXPERIMENTS.md from the saved benchmark reports.

Each benchmark saves its paper-style table under ``benchmarks/results/``;
this script stitches them together with the paper's reported numbers and
the shape verdicts, producing the EXPERIMENTS.md deliverable.  Re-run
after a benchmark sweep::

    pytest benchmarks/ --benchmark-only
    python benchmarks/make_experiments_md.py
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.textplot import grouped_bar_chart, parse_report_table

RESULTS = Path(__file__).parent / "results"
TARGET = Path(__file__).parent.parent / "EXPERIMENTS.md"

#: results stem → (series columns to chart, unit) — rendered as ASCII bars
#: under the measured table so the *shape* of each paper figure is visible
CHARTS: dict[str, tuple[list[str], str]] = {
    "fig_4_a": (["Naive", "Semi-naive", "LASH"], "s"),
    "fig_4_b": (["Naive", "Semi-naive", "LASH"], "MB"),
    "fig_4_c": (["BFS", "DFS", "SPAM", "PSM", "PSM+Index"], "s"),
    "fig_4_d": (["DFS", "SPAM", "PSM", "PSM+Index"], ""),
    "fig_4_e": (["MG-FSM", "LASH"], "s"),
    "fig_5_a": (["Map", "Shuffle", "Reduce"], "s"),
    "fig_5_b": (["Map", "Shuffle", "Reduce"], "s"),
    "fig_5_c": (["Map", "Shuffle", "Reduce"], "s"),
    "fig_5_d": (["Output sequences"], ""),
    "fig_5_e": (["Map", "Shuffle", "Reduce"], "s"),
    "fig_5_f": (["Map", "Shuffle", "Reduce"], "s"),
    "fig_6_a": (["Map", "Shuffle", "Reduce"], "s"),
    "fig_6_b": (["Map", "Shuffle", "Reduce"], "s"),
    "fig_6_c": (["Map", "Shuffle", "Reduce"], "s"),
    "table_3": (["Non-trivial (%)", "Closed (%)", "Maximal (%)"], "%"),
    "gsp_baseline": (["GSP (s)", "LASH (s)"], "s"),
    "ablation_rewrites": (["Shuffle MB"], "MB"),
    "ext__closed_mining": (["patterns", "candidates"], ""),
}


def chart_for(stem: str, text: str) -> str | None:
    """Render the configured ASCII chart for one saved report, if any."""
    spec = CHARTS.get(stem)
    if spec is None:
        return None
    wanted, unit = spec
    try:
        columns, rows = parse_report_table(text)
    except Exception:
        return None
    present = [c for c in wanted if c in columns]
    if not present:
        return None
    labels, series = [], {c: [] for c in present}
    for row in rows:
        values = {}
        for c in present:
            cell = row[columns.index(c) + 1] if columns.index(c) + 1 < len(
                row
            ) else ""
            try:
                values[c] = float(cell.replace(",", ""))
            except ValueError:
                break
        else:
            labels.append(row[0])
            for c in present:
                series[c].append(values[c])
    if not labels:
        return None
    return grouped_bar_chart(labels, series, width=40, unit=unit)

#: experiment id → (results file stem, what the paper reports, shape verdict)
EXPERIMENTS: list[tuple[str, str, str, str]] = [
    (
        "Table 1 — dataset characteristics",
        "table_1",
        "NYT: 49.6M sentences, avg length 21.1, 2.76M unique items; AMZN: "
        "6.6M users, avg length 4.5, 2.37M unique items.",
        "Synthetic stand-ins are ~3 orders of magnitude smaller (single "
        "machine); length distributions and unique/total item ratios follow "
        "the same regime: text sequences much longer than product sessions.",
    ),
    (
        "Table 2 — hierarchy characteristics",
        "table_2",
        "NYT-L: 2 levels, many roots, fan-out 2.7; NYT-P: 2 levels, 22 "
        "roots, fan-out ~125k; LP: 3 levels; CLP: 4 levels.  AMZN h2–h8: "
        "2–8 levels with intermediate items growing with depth.",
        "Reproduced by construction: L has many shallow roots, P few huge "
        "ones, LP/CLP add levels; h2→h8 grows intermediate items at fixed "
        "leaf count.",
    ),
    (
        "Table 3 — output statistics",
        "table_3",
        "NYT σ=100 λ=5: non-trivial 70–75%, closed 89→35%, maximal 32→6% "
        "as the hierarchy deepens (P→CLP).  AMZN-h8: lowering σ 10000→100 "
        "drops non-trivial 100→97%, closed 100→65%, maximal 22→10%.",
        "Same directions: a large majority of patterns are non-trivial; "
        "closed%/maximal% fall with hierarchy depth and with lower σ.",
    ),
    (
        "Fig. 4(a) — total time, baselines vs LASH",
        "fig_4_a",
        "LASH ~10× faster at (σ=1000,λ=3) and (σ=100,λ=3), >50× at "
        "(σ=100,λ=5); on CLP the baselines were aborted after 12 h vs "
        "~600 s for LASH.",
        "LASH wins every setting and the gap widens with λ and hierarchy "
        "depth; naïve ≥ semi-naïve.",
    ),
    (
        "Fig. 4(b) — map output bytes",
        "fig_4_b",
        "LASH transfers far less data between map and reduce than both "
        "baselines (the baselines did not finish CLP).",
        "Same ordering on every setting; the baseline/LASH byte ratio "
        "grows with λ and depth.",
    ),
    (
        "Fig. 4(c) — local mining time",
        "fig_4_c",
        "PSM 9–22× faster than BFS (BFS ran out of memory at CLP λ=7), "
        "2.5–3.5× faster than DFS; indexing pays off at larger λ/depth.",
        "PSM beats BFS and DFS in every setting (SPAM added as an extra "
        "all-sequences series); BFS degrades hardest with depth.",
    ),
    (
        "Fig. 4(d) — candidates per output sequence",
        "fig_4_d",
        "DFS up to ~200 candidates/output; PSM a small fraction; the "
        "index prunes up to another 2×.",
        "Ordering DFS > PSM ≥ PSM+Index holds everywhere.",
    ),
    (
        "Fig. 4(e) — flat mining vs MG-FSM",
        "fig_4_e",
        "LASH (= MG-FSM with PSM as local miner) 2–5× faster than MG-FSM "
        "on hierarchy-free mining.",
        "LASH faster on every setting; identical outputs asserted.",
    ),
    (
        "Fig. 5(a) — effect of support σ",
        "fig_5_a",
        "All phases shrink as σ grows; map time falls because the "
        "effective hierarchy depth shrinks at high σ.",
        "Same monotone decline in map and reduce.",
    ),
    (
        "Fig. 5(b) — effect of gap γ",
        "fig_5_b",
        "Map roughly flat (rewrites ~independent of γ); reduce grows "
        "steeply with γ.",
        "Same: map flat, reduce grows with γ.",
    ),
    (
        "Fig. 5(c) — effect of length λ",
        "fig_5_c",
        "Map ~flat; reduce grows significantly with λ.",
        "Same shape.",
    ),
    (
        "Fig. 5(d) — output size vs λ",
        "fig_5_d",
        "Output sequences grow with λ, proportionally to reduce time.",
        "Same: output grows with λ and tracks reduce time.",
    ),
    (
        "Fig. 5(e) — AMZN hierarchy depth",
        "fig_5_e",
        "Map grows slightly with depth; reduce grows significantly; "
        "h4→h8 less pronounced (most products have ≤4 categories).",
        "Same, including the flattening beyond h4 (chains are ragged by "
        "construction).",
    ),
    (
        "Fig. 5(f) — NYT hierarchy variants",
        "fig_5_f",
        "P ≫ L in reduce time despite equal depth (few huge roots vs many "
        "small ones); LP/CLP higher still in both phases.",
        "Same ordering L < P < LP ≤ CLP.",
    ),
    (
        "Fig. 6(a) — data scalability",
        "fig_6_a",
        "Map and reduce times grow linearly with input size (25–100%).",
        "Near-linear growth in both phases.",
    ),
    (
        "Fig. 6(b) — strong scalability",
        "fig_6_b",
        "Near-linear speedup from 2 to 8 nodes.",
        "Makespans on the simulated cluster shrink ~linearly in nodes.",
    ),
    (
        "Fig. 6(c) — weak scalability",
        "fig_6_c",
        "Near-flat total time as data and nodes double together; slight "
        "growth because output grows >2× when input doubles (43M→99M→220M "
        "patterns).",
        "Near-flat with the same slight growth, same cause (output "
        "super-linearity).",
    ),
    (
        "Sec. 5.2 — search-space analysis (analytic)",
        "sec_5_2_analytic",
        "With k=100,000 and λ=5, PSM explores 0.005% of the BFS/DFS "
        "worst-case space.",
        "Formula reproduced exactly (0.005%).",
    ),
    (
        "Sec. 5.2 — search-space analysis (measured)",
        "sec_5_2_measured",
        "On the Eq. (4) partition: DFS evaluates 5+17+13+2 = 37 candidate "
        "sequences; PSM roughly a third (13 nodes in Fig. 3's counting).",
        "DFS = 37 exactly; PSM 18 and PSM+Index 14 under this "
        "repository's support-evaluation counting convention.",
    ),
    (
        "Ablation — rewrite stages (beyond the paper)",
        "ablation_rewrites",
        "Sec. 4 motivates the rewrites with skew, redundancy and "
        "communication cost but reports no per-stage numbers.",
        "Shuffle volume and skew drop monotonically as stages are added; "
        "mined answer invariant (property-tested).",
    ),
    (
        "Ablation — combiner aggregation (beyond the paper)",
        "ablation_aggregation",
        "Sec. 4.4: aggregation 'saves communication cost and reduces the "
        "computational cost of the GSM algorithm'.",
        "Combiner reduces shuffle bytes and reducer input; identical "
        "output.",
    ),
    (
        "Baseline — extended-sequence GSP (beyond the paper)",
        "gsp_baseline",
        "Sec. 1/7: the itemset-encoding approach 'increases the size of "
        "the sequence database by a factor of roughly the depth of the "
        "hierarchy' and is dismissed as inefficient.",
        "GSP agrees pattern-for-pattern with LASH and is slower in every "
        "setting.",
    ),
    (
        "Fault tolerance (beyond the paper)",
        "fault_tolerance",
        "Sec. 3.1: the MapReduce runtime 'transparently handles failures'.",
        "Mined answer byte-identical at every injected failure rate; "
        "wasted work metered separately.",
    ),
    (
        "Extension — direct closed/maximal mining (paper future work)",
        "ext__closed_mining",
        "Sec. 6.7: 'direct mining of maximal or closed sequences in the "
        "context of hierarchies has not been studied in the literature. "
        "Our results indicate that such methods are a promising direction "
        "for future work.'",
        "Implemented (local pruning in each partition + one cover-"
        "reconciliation job): candidates leaving the mining reducers drop "
        "to roughly half of the full output; answers agree exactly with "
        "post-hoc filtering in both modes (property-tested).",
    ),
    (
        "Extension — pattern-index query latency (Sec. 1 applications)",
        "ext__query",
        "Sec. 1/2 motivate GSM with interactive exploration tools "
        "(Google n-gram viewer, Netspeak) and IE pattern lookup.",
        "A hierarchy-aware wildcard index over the mined output answers "
        "every battery query at interactive latency; selective queries "
        "touch only their postings.",
    ),
    (
        "Ablation — external shuffle (beyond the paper)",
        "ablation_spill",
        "Sec. 3.1: Hadoop shuffles through local disk (sort/spill/merge); "
        "the paper treats this as part of the runtime.",
        "Disk-backed shuffle produces the identical answer and identical "
        "logical shuffle bytes; spill volume and merge cost metered "
        "separately.",
    ),
]

HEADER = """\
# EXPERIMENTS — paper vs. measured

Every table and figure of the paper's evaluation (Sec. 6), reproduced by
the benchmark harness on synthetic stand-in datasets (DESIGN.md §2
explains each substitution).  Absolute numbers are not comparable — the
paper ran Java on an 11-node Hadoop cluster over 50M-sequence corpora;
this repository runs pure Python on one machine over structurally matched
synthetic data.  The reproduction targets are the *shapes*: who wins, by
roughly what factor, and which way each trend bends.  Every shape claim
below is also asserted programmatically inside the corresponding
benchmark, so `pytest benchmarks/ --benchmark-only` re-verifies this
document.

Regenerate after a sweep with::

    pytest benchmarks/ --benchmark-only
    python benchmarks/make_experiments_md.py

"""


def build() -> str:
    parts = [HEADER]
    missing = []
    for title, stem, paper, verdict in EXPERIMENTS:
        parts.append(f"## {title}\n")
        parts.append(f"**Paper reports:** {paper}\n")
        parts.append(f"**Shape verdict:** {verdict}\n")
        path = RESULTS / f"{stem}.txt"
        if path.exists():
            table = path.read_text(encoding="utf-8").rstrip()
            parts.append("**Measured (this repository):**\n")
            parts.append("```")
            parts.append(table)
            chart = chart_for(stem, table)
            if chart is not None:
                parts.append("")
                parts.append(chart)
            parts.append("```\n")
        else:
            missing.append(stem)
            parts.append(
                "*(no saved result — run the benchmark sweep first)*\n"
            )
    if missing:
        parts.append(
            f"\n> Missing results at generation time: {', '.join(missing)}\n"
        )
    return "\n".join(parts)


def main() -> int:
    TARGET.write_text(build(), encoding="utf-8")
    print(f"wrote {TARGET}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
