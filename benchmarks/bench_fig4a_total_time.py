"""Fig. 4(a) — total time: naïve vs semi-naïve vs LASH (NYT, γ=0).

Paper: LASH ≈10× faster than both baselines at (σ=1000, λ=3) and
(σ=100, λ=3), >50× at (σ=100, λ=5); on NYT-CLP the baselines were aborted
after 12 hours while LASH finished in ~600 s.

Shape targets: LASH wins every setting; the gap widens with λ and with
hierarchy depth; naïve ≥ semi-naïve.
"""

import time

from repro import Lash, MiningParams, NaiveAlgorithm, SemiNaiveAlgorithm
from conftest import NYT_SIGMA_HIGH, NYT_SIGMA_LOW
from reporting import BenchReport

SETTINGS = [
    ("P", NYT_SIGMA_HIGH, 3),
    ("P", NYT_SIGMA_LOW, 3),
    ("P", NYT_SIGMA_LOW, 5),
    ("CLP", NYT_SIGMA_LOW, 5),
]


def _timed(algorithm, database, hierarchy):
    start = time.perf_counter()
    result = algorithm.mine(database, hierarchy)
    return time.perf_counter() - start, result


def test_fig4a_total_time(benchmark, nyt):
    report = BenchReport("Fig 4(a)", "total time (s): baselines vs LASH, gamma=0")
    timings = {}
    for variant, sigma, lam in SETTINGS:
        params = MiningParams(sigma, 0, lam)
        hierarchy = nyt.hierarchy(variant)
        t_naive, r_naive = _timed(NaiveAlgorithm(params), nyt.database, hierarchy)
        t_semi, r_semi = _timed(
            SemiNaiveAlgorithm(params), nyt.database, hierarchy
        )
        t_lash, r_lash = _timed(Lash(params), nyt.database, hierarchy)
        assert r_naive.decoded() == r_lash.decoded() == r_semi.decoded()
        label = f"{variant}({sigma},0,{lam})"
        timings[label] = (t_naive, t_semi, t_lash)
        report.add(label, {
            "Naive": t_naive,
            "Semi-naive": t_semi,
            "LASH": t_lash,
            "Speedup": round(t_naive / t_lash, 1),
            "Patterns": len(r_lash),
        })
    report.emit()

    # benchmark the headline LASH configuration
    variant, sigma, lam = SETTINGS[-1]
    benchmark.pedantic(
        lambda: Lash(MiningParams(sigma, 0, lam)).mine(
            nyt.database, nyt.hierarchy(variant)
        ),
        rounds=1, iterations=1,
    )

    # Shape: LASH beats naive everywhere; it beats semi-naive decisively
    # once mining dominates (the lambda=5 settings, where the paper
    # reports >50x).  On the easiest lambda=3 settings our corpus is ~4
    # orders of magnitude smaller than the paper's, so LASH's fixed
    # two-job overhead puts it at parity with semi-naive — we only
    # require parity there (within 1.5x), plus a strict aggregate win.
    for label, (t_naive, t_semi, t_lash) in timings.items():
        assert t_lash < t_naive, label
        if ",0,5)" in label:
            assert t_lash < t_semi, label
        else:
            assert t_lash < t_semi * 1.5, label
    assert sum(t[2] for t in timings.values()) < sum(
        t[1] for t in timings.values()
    )
    p_low3 = timings[f"P({NYT_SIGMA_LOW},0,3)"]
    p_low5 = timings[f"P({NYT_SIGMA_LOW},0,5)"]
    assert p_low5[0] / p_low5[2] > p_low3[0] / p_low3[2] * 0.8
