"""Extension — direct closed/maximal mining vs post-hoc filtering.

The paper (Sec. 6.7) computes Table 3's closed/maximal percentages by
post-processing the full GSM output and names direct mining of
closed/maximal generalized sequences as future work.  We implement that
algorithm (``repro.core.closedlash``: local pruning inside each partition
plus a cover-reconciliation job) and measure what directness buys:

* **local pruning** — only locally surviving candidates leave the mining
  reducers (the post-hoc route materializes every frequent pattern
  centrally before filtering); the cross-pivot cover messages that pay
  for exactness are counted separately, and the reconcile combiner folds
  them per split;
* **identical answers** — both routes must produce the same pattern sets.

Shape targets: candidates < full output (local pruning works); the
combiner shrinks the reconcile shuffle; closed ⊇ maximal; both modes
agree exactly with the post-hoc reference.
"""

from repro import Lash, MiningParams
from repro.analysis.closedmax import filter_result
from repro.core.closedlash import _CAND, ClosedLash
from conftest import NYT_SIGMA_LOW
from reporting import BenchReport


def test_closed_mining_direct_vs_posthoc(benchmark, nyt):
    report = BenchReport(
        "Ext. closed mining", "direct vs post-hoc, NYT-CLP"
    )
    params = MiningParams(NYT_SIGMA_LOW, 0, 5)
    hierarchy = nyt.hierarchy("CLP")

    def sweep():
        rows = {}
        full = Lash(params).mine(nyt.database, hierarchy)
        rows["full output"] = {
            "patterns": len(full),
            "candidates": len(full),
            "covers": 0,
            "shuffled": "-",
            "agree": "-",
        }
        for mode in ("closed", "maximal"):
            reference = filter_result(full, mode).patterns
            direct = ClosedLash(params, mode=mode).mine(
                nyt.database, hierarchy
            )
            candidates = sum(
                1 for _, (tag, _) in direct.mining_job.output
                if tag == _CAND
            )
            raw = direct.reconcile_job.counters["MAP_OUTPUT_RECORDS"]
            shuffled = direct.reconcile_job.counters[
                "COMBINE_OUTPUT_RECORDS"
            ]
            rows[f"direct {mode}"] = {
                "patterns": len(direct),
                "candidates": candidates,
                "covers": raw - candidates,
                "shuffled": shuffled,
                "agree": direct.patterns == reference,
            }
        return rows, len(full)

    (rows, full_count) = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for label, row in rows.items():
        report.add(label, row)
    report.emit()

    for mode in ("closed", "maximal"):
        row = rows[f"direct {mode}"]
        assert row["agree"] is True
        # local pruning emits strictly fewer candidates than the full output
        assert row["candidates"] < full_count
        # the combiner compacts the candidate+cover stream
        assert row["shuffled"] <= row["candidates"] + row["covers"]
    # redundancy exists: closed/maximal are proper subsets
    assert rows["direct maximal"]["patterns"] <= rows["direct closed"][
        "patterns"
    ] < full_count
