"""Table 3 — output statistics (% non-trivial / closed / maximal).

Paper (NYT, σ=100, λ=5): non-trivial 70–75%; closed drops from 89% (P) to
35% (CLP); maximal from 32% to 6% — deeper hierarchies create more
redundancy.  (AMZN-h8, γ=1, λ=5): lowering σ from 10000 to 100 drops
non-trivial 100→97%, closed 100→65%, maximal 22→10%.

Shape targets: a large majority of patterns are non-trivial; closed% and
maximal% fall as hierarchy depth grows and as σ shrinks.
"""

from repro import Lash, MiningParams, mine
from repro.analysis import output_statistics, recode_patterns
from conftest import AMZN_SIGMA, NYT_SIGMA_LOW
from reporting import BenchReport


def _stats_for(database, hierarchy, sigma, gamma, lam):
    gsm = mine(database, hierarchy, sigma=sigma, gamma=gamma, lam=lam)
    flat = mine(database, None, sigma=sigma, gamma=gamma, lam=lam)
    flat_patterns = recode_patterns(
        flat.patterns, flat.vocabulary, gsm.vocabulary
    )
    stats = output_statistics(gsm.vocabulary, gsm.patterns, flat_patterns)
    return gsm, stats


def test_table3_output_statistics(benchmark, nyt, amzn):
    report = BenchReport("Table 3", "output statistics")

    nyt_stats = {}
    for variant in ("P", "LP", "CLP"):
        _, stats = _stats_for(
            nyt.database, nyt.hierarchy(variant), NYT_SIGMA_LOW, 0, 5
        )
        nyt_stats[variant] = stats
        report.add(f"NYT-{variant} (s={NYT_SIGMA_LOW},l=5)", stats.row())

    amzn_stats = {}
    for sigma in (8 * AMZN_SIGMA, 2 * AMZN_SIGMA, AMZN_SIGMA):
        gsm, stats = _stats_for(amzn.database, amzn.hierarchy(8), sigma, 1, 5)
        amzn_stats[sigma] = stats
        report.add(f"AMZN-h8 (s={sigma},g=1,l=5)", stats.row())

    # time the analysis itself on the last (largest) output
    benchmark(
        lambda: output_statistics(gsm.vocabulary, gsm.patterns)
    )
    report.emit()

    # most patterns need the hierarchy (paper: >70% NYT, >95% AMZN)
    for stats in nyt_stats.values():
        assert stats.non_trivial_pct > 50
    # deeper hierarchy ⇒ more redundancy (closed/maximal % drop)
    assert nyt_stats["CLP"].maximal_pct < nyt_stats["P"].maximal_pct
    assert nyt_stats["CLP"].closed_pct < nyt_stats["P"].closed_pct
    # lower support ⇒ more redundancy
    sigmas = sorted(amzn_stats, reverse=True)
    assert amzn_stats[sigmas[0]].maximal_pct >= amzn_stats[sigmas[-1]].maximal_pct
