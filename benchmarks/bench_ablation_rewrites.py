"""Ablation — the Sec. 4 rewrite stages, added cumulatively (NYT-CLP).

DESIGN.md calls out the rewrite pipeline as *the* communication-cost lever
of LASH: w-generalization enables compression and aggregation,
isolated-pivot removal and unreachability reduction shrink sequences,
blank compression caps what remains.  This bench quantifies each stage's
contribution by running LASH with cumulative plans, from ``P_w(T) = T``
(Eq. (1)'s strawman) to the full pipeline.

Shape targets: shuffle bytes drop monotonically as stages are added (full
pipeline strictly below the strawman); the mined answer never changes.
"""

from repro import Lash, MiningParams, build_vocabulary
from repro.core import RewritePlan, build_partitions, partition_statistics
from conftest import NYT_SIGMA_LOW
from reporting import BenchReport

PLANS = [
    ("none (P_w(T)=T)", RewritePlan(False, False, False, False)),
    ("+generalize", RewritePlan(True, False, False, False)),
    ("+isolated", RewritePlan(True, True, False, False)),
    ("+unreachable", RewritePlan(True, True, True, False)),
    ("full (+compress)", RewritePlan(True, True, True, True)),
]


def test_ablation_rewrites(benchmark, nyt):
    report = BenchReport(
        "Ablation rewrites", "cumulative rewrite stages, NYT-CLP"
    )
    params = MiningParams(NYT_SIGMA_LOW, 0, 5)
    hierarchy = nyt.hierarchy("CLP")

    vocabulary = build_vocabulary(nyt.database, hierarchy)
    encoded = [vocabulary.encode_sequence(t) for t in nyt.database]

    def sweep():
        rows = {}
        reference = None
        for label, plan in PLANS:
            result = Lash(params, rewrite_plan=plan).mine(
                nyt.database, hierarchy
            )
            if reference is None:
                reference = result.decoded()
            else:
                assert result.decoded() == reference, label
            skew = partition_statistics(
                build_partitions(vocabulary, encoded, params, plan)
            )
            rows[label] = {
                "Shuffle MB": result.counters["SHUFFLE_BYTES"] / 1e6,
                "Map MB": result.counters["MAP_OUTPUT_BYTES"] / 1e6,
                "Reduce (s)": result.phase_times().reduce_s,
                "Imbalance": skew.imbalance,
                "Max share (%)": 100 * skew.max_share,
            }
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for label, row in rows.items():
        report.add(label, {
            "Shuffle MB": round(row["Shuffle MB"], 2),
            "Map MB": round(row["Map MB"], 2),
            "Reduce (s)": round(row["Reduce (s)"], 2),
            "Imbalance": round(row["Imbalance"], 1),
            "Max share (%)": round(row["Max share (%)"], 1),
        })
    report.emit()

    shuffle = [row["Shuffle MB"] for _, row in (
        (label, rows[label]) for label, _ in PLANS
    )]
    # full pipeline clearly beats the strawman; each stage helps or is neutral
    assert shuffle[-1] < shuffle[0]
    for earlier, later in zip(shuffle, shuffle[1:]):
        assert later <= earlier * 1.02  # allow metering noise
