"""Shared fixtures for the benchmark harness.

Dataset scale is controlled by ``REPRO_BENCH_SCALE`` (default 1.0 ≈ a few
seconds per experiment).  The paper ran on 50M NYT sentences and 6.6M AMZN
users on a 10-worker Hadoop cluster; we reproduce the *shapes* on synthetic
data sized for a single machine (see DESIGN.md §2).

Support thresholds are scaled to our corpus sizes: the paper's NYT σ=1000 /
σ=100 (out of 50M sentences) map to "high" / "low" here.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from repro.datasets import (
    ProductDataConfig,
    TextCorpusConfig,
    generate_product_data,
    generate_text_corpus,
)

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: NYT-like corpus knobs
NYT_SENTENCES = max(500, int(6000 * SCALE))
NYT_SIGMA_HIGH = max(2, int(60 * SCALE))
NYT_SIGMA_LOW = max(2, int(20 * SCALE))

#: AMZN-like dataset knobs
AMZN_USERS = max(300, int(5000 * SCALE))
AMZN_PRODUCTS = max(100, int(1000 * SCALE))
AMZN_SIGMA = max(2, int(25 * SCALE))


@pytest.fixture(scope="session")
def nyt():
    """The synthetic NYT-like corpus with L/P/LP/CLP hierarchies."""
    return generate_text_corpus(
        TextCorpusConfig(num_sentences=NYT_SENTENCES, seed=42)
    )


@pytest.fixture(scope="session")
def amzn():
    """The synthetic AMZN-like sessions with h2…h8 hierarchies."""
    return generate_product_data(
        ProductDataConfig(
            num_users=AMZN_USERS, num_products=AMZN_PRODUCTS, seed=29
        )
    )


@pytest.fixture(scope="session")
def fig5_lambda_runs(amzn):
    """Shared λ-sweep used by Fig. 5(c) and Fig. 5(d)."""
    from repro import Lash, MiningParams

    runs = {}
    for lam in (3, 4, 5, 6, 7):
        result = Lash(MiningParams(AMZN_SIGMA, 1, lam)).mine(
            amzn.database, amzn.hierarchy(8)
        )
        runs[lam] = result
    return runs
