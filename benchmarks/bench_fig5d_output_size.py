"""Fig. 5(d) — output size vs λ (AMZN-h8, γ=1).

Paper: the number of output sequences grows with λ (to ~200M at λ=7) and
is proportional to the reduce time of Fig. 5(c).  Shape target: output
count is non-decreasing in λ and correlates positively with reduce time.
"""

from reporting import BenchReport


def test_fig5d_output_size(benchmark, fig5_lambda_runs):
    report = BenchReport("Fig 5(d)", "# output sequences vs lambda (AMZN-h8)")
    counts = {}
    reduce_times = {}
    for lam, result in sorted(fig5_lambda_runs.items()):
        counts[lam] = len(result)
        reduce_times[lam] = result.phase_times().reduce_s
        report.add(f"lambda={lam}", {
            "Output sequences": counts[lam],
            "Reduce (s)": round(reduce_times[lam], 2),
        })
    report.emit()

    benchmark.pedantic(
        lambda: [len(r) for r in fig5_lambda_runs.values()],
        rounds=1, iterations=1,
    )

    lams = sorted(counts)
    assert [counts[l] for l in lams] == sorted(counts[l] for l in lams)
    assert counts[7] > counts[3]
    # proportionality: larger outputs take longer to mine
    assert reduce_times[7] > reduce_times[3]