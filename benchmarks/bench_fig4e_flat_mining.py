"""Fig. 4(e) — sequence mining without hierarchies: MG-FSM vs LASH (NYT).

Paper: with hierarchies disabled, LASH (= MG-FSM partitioning + PSM local
miner) is 2-5x faster than MG-FSM (BFS local miner) at (sigma=100,g=1,l=5),
(sigma=10,g=1,l=5), (sigma=10,g=1,l=10); the speedup "essentially stems
from using the PSM algorithm for mining partitions".  The two algorithms
differ *only* in the local miner, so at our scale (seconds, map-dominated)
the total-time gap lives in the reduce phase: the shape targets are
identical outputs, a strict PSM win on summed reduce (mining) time, and
aggregate total time no worse than MG-FSM.
"""

import time

from repro import Lash, MgFsm, MiningParams
from conftest import NYT_SIGMA_HIGH, NYT_SIGMA_LOW
from reporting import BenchReport

SETTINGS = [
    (NYT_SIGMA_HIGH, 1, 5),
    (NYT_SIGMA_LOW, 1, 5),
    (NYT_SIGMA_LOW, 1, 8),
]


def test_fig4e_flat_mining(benchmark, nyt):
    report = BenchReport("Fig 4(e)", "flat mining total time (s)")
    timings = {}
    for sigma, gamma, lam in SETTINGS:
        params = MiningParams(sigma, gamma, lam)
        start = time.perf_counter()
        mgfsm_result = MgFsm(params).mine(nyt.database)
        t_mgfsm = time.perf_counter() - start
        start = time.perf_counter()
        lash_result = Lash(params).mine(nyt.database, hierarchy=None)
        t_lash = time.perf_counter() - start
        assert mgfsm_result.decoded() == lash_result.decoded()
        label = f"({sigma},{gamma},{lam})"
        r_mgfsm = mgfsm_result.phase_times().reduce_s
        r_lash = lash_result.phase_times().reduce_s
        timings[label] = (t_mgfsm, t_lash, r_mgfsm, r_lash)
        report.add(label, {
            "MG-FSM": t_mgfsm,
            "LASH": t_lash,
            "MG-FSM reduce": r_mgfsm,
            "LASH reduce": r_lash,
            "Patterns": len(lash_result),
        })
    report.emit()

    sigma, gamma, lam = SETTINGS[1]
    benchmark.pedantic(
        lambda: Lash(MiningParams(sigma, gamma, lam)).mine(
            nyt.database, hierarchy=None
        ),
        rounds=1, iterations=1,
    )

    # PSM's advantage lives in the mining (reduce) phase; totals are
    # map-dominated at this scale, so require aggregate parity there.
    assert sum(t[3] for t in timings.values()) < sum(
        t[2] for t in timings.values()
    )
    assert sum(t[1] for t in timings.values()) < 1.15 * sum(
        t[0] for t in timings.values()
    )
