"""Extended-sequence GSP vs LASH (the Sec. 1/7 classic baseline).

The paper dismisses the extended-sequence encoding of Srikant & Agrawal as
inefficient — it *"increases the size of the sequence database by a factor
of roughly the depth of the hierarchy"* — and GSP additionally pays one
full database scan per pattern length.  This bench quantifies both against
LASH on the NYT data.

Shape targets: identical output; LASH faster in every setting, with the
gap growing as σ drops (more candidates to scan for).
"""

import time

from repro import GspAlgorithm, Lash, MiningParams
from conftest import NYT_SIGMA_HIGH, NYT_SIGMA_LOW
from reporting import BenchReport

SETTINGS = [
    ("P", NYT_SIGMA_HIGH, 3),
    ("P", NYT_SIGMA_LOW, 3),
    ("LP", NYT_SIGMA_HIGH, 4),
]


def test_gsp_vs_lash(benchmark, nyt):
    report = BenchReport(
        "GSP baseline", "extended-sequence GSP vs LASH, gamma=0"
    )
    timings = {}
    for variant, sigma, lam in SETTINGS:
        params = MiningParams(sigma, 0, lam)
        hierarchy = nyt.hierarchy(variant)

        start = time.perf_counter()
        gsp_algo = GspAlgorithm(params)
        gsp = gsp_algo.mine(nyt.database, hierarchy)
        t_gsp = time.perf_counter() - start

        start = time.perf_counter()
        lash = Lash(params).mine(nyt.database, hierarchy)
        t_lash = time.perf_counter() - start

        assert gsp.decoded() == lash.decoded()
        label = f"{variant}({sigma},0,{lam})"
        timings[label] = (t_gsp, t_lash)
        levels = max(gsp_algo.level_sizes)
        report.add(label, {
            "GSP (s)": round(t_gsp, 2),
            "LASH (s)": round(t_lash, 2),
            "Speedup": round(t_gsp / t_lash, 1),
            "GSP passes": levels,
            "Patterns": len(lash),
        })
    report.emit()

    benchmark.pedantic(
        lambda: GspAlgorithm(
            MiningParams(NYT_SIGMA_HIGH, 0, 3)
        ).mine(nyt.database, nyt.hierarchy("P")),
        rounds=1, iterations=1,
    )

    for t_gsp, t_lash in timings.values():
        assert t_lash < t_gsp
