"""Paper-style result tables for the benchmark harness.

Each benchmark prints the rows/series of the paper's table or figure it
reproduces and saves them under ``benchmarks/results/`` so EXPERIMENTS.md
can be refreshed from a run.  Printing goes to ``sys.__stdout__`` to bypass
pytest's capture — the tables appear in the terminal (and in
``bench_output.txt``) without requiring ``-s``.
"""

from __future__ import annotations

import sys
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


class BenchReport:
    """Collects rows for one experiment and renders a fixed-width table."""

    def __init__(self, experiment: str, caption: str) -> None:
        self.experiment = experiment
        self.caption = caption
        self._columns: list[str] | None = None
        self._rows: list[list[str]] = []

    def add(self, label: str, row: dict) -> None:
        """Add one labeled row; all rows must share the same columns."""
        columns = list(row)
        if self._columns is None:
            self._columns = columns
        elif columns != self._columns:
            raise ValueError(
                f"row columns {columns} differ from {self._columns}"
            )
        self._rows.append([label] + [_fmt(row[c]) for c in columns])

    def render(self) -> str:
        header = [self.experiment] + (self._columns or [])
        table = [header] + self._rows
        widths = [
            max(len(row[i]) for row in table) for i in range(len(header))
        ]
        lines = [
            f"== {self.experiment}: {self.caption} ==",
        ]
        for r, row in enumerate(table):
            line = "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
            lines.append(line.rstrip())
            if r == 0:
                lines.append("-" * len(lines[-1]))
        return "\n".join(lines)

    def emit(self) -> None:
        """Print past pytest's capture and persist under results/."""
        text = self.render()
        print("\n" + text + "\n", file=sys.__stdout__, flush=True)
        RESULTS_DIR.mkdir(exist_ok=True)
        safe = "".join(
            c if c.isalnum() else "_" for c in self.experiment.lower()
        ).strip("_")
        (RESULTS_DIR / f"{safe}.txt").write_text(text + "\n", encoding="utf-8")


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
