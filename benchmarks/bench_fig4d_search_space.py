"""Fig. 4(d) — candidate sequences per output sequence (NYT).

Paper: DFS evaluates up to ~200 candidates per output sequence; PSM a small
fraction of that; the right-expansion index prunes up to another 2×.
Shape target: candidates/output ordering DFS > PSM ≥ PSM+Index in every
setting.
"""

from repro import (
    DfsMiner,
    MiningParams,
    PivotSequenceMiner,
    SpamMiner,
    build_vocabulary,
)
from repro.core import build_partitions
from repro.core.psm import mine_partitions
from conftest import NYT_SIGMA_HIGH, NYT_SIGMA_LOW
from reporting import BenchReport

SETTINGS = [
    ("LP", NYT_SIGMA_HIGH, 5),
    ("LP", NYT_SIGMA_LOW, 5),
    ("CLP", NYT_SIGMA_LOW, 5),
    ("CLP", NYT_SIGMA_LOW, 7),
]


def _sweep(nyt):
    ratios = {}
    for variant, sigma, lam in SETTINGS:
        params = MiningParams(sigma, 0, lam)
        hierarchy = nyt.hierarchy(variant)
        vocabulary = build_vocabulary(nyt.database, hierarchy)
        encoded = [vocabulary.encode_sequence(t) for t in nyt.database]
        partitions = build_partitions(vocabulary, encoded, params)
        row = {}
        for name, miner in [
            ("DFS", DfsMiner(vocabulary, params)),
            ("SPAM", SpamMiner(vocabulary, params)),
            ("PSM", PivotSequenceMiner(vocabulary, params, index_mode="none")),
            ("PSM+Index", PivotSequenceMiner(vocabulary, params, index_mode="exact")),
        ]:
            mine_partitions(miner, partitions)
            row[name] = miner.stats.candidates_per_output()
        ratios[f"{variant}({sigma},0,{lam})"] = row
    return ratios


def test_fig4d_search_space(benchmark, nyt):
    report = BenchReport("Fig 4(d)", "# candidate / output sequences")
    ratios = benchmark.pedantic(_sweep, args=(nyt,), rounds=1, iterations=1)
    for label, row in ratios.items():
        report.add(label, {k: round(v, 2) for k, v in row.items()})
    report.emit()

    for row in ratios.values():
        assert row["PSM"] < row["DFS"]
        assert row["PSM+Index"] <= row["PSM"]
