"""Extension — query serving throughput: store vs rebuild, plan vs DP.

Two batteries over the same mined NYT-slice pattern set:

* **store vs rebuild** — the split the serving subsystem exists for:
  ``lash query`` rebuilds a vocabulary and inverted index from the
  patterns TSV on every invocation; ``lash serve`` opens a binary
  :class:`~repro.serve.store.PatternStore` once and answers from it.
  Store-backed serving must sustain thousands of queries/sec where
  rebuild-per-query manages a few, and store ``open()`` must beat any
  rebuild by orders of magnitude.

* **compiled plans vs reference DP** — the raw-speed matcher: the same
  store handle answered through compiled query plans (positional
  bitmap algebra, plan cache warm — the steady state a server lives
  in) vs the legacy per-candidate DP (``_accelerate = False``).
  Byte-identity is asserted on every query class before timing, so the
  speedup can't come from serving different answers.  The target the
  acceptance gate enforces: **≥5×** on gap/adjacency-heavy classes
  (≥2× in ``--quick`` CI mode, where the corpus is a tenth the size
  and constant overheads dominate).

Results persist to ``BENCH_query.json`` (override with
``LASH_BENCH_QUERY_OUT``) in the same shape as ``BENCH_router.json``:
per-class and overall numbers for the perf trajectory.
"""

import json
import os
import sys
import time

if __name__ == "__main__" and "--quick" in sys.argv:
    # CI smoke entry point: shrink the corpus before conftest reads it
    os.environ.setdefault("REPRO_BENCH_SCALE", "0.1")

from repro import Lash, MiningParams, PatternIndex
from repro.io import read_patterns, write_patterns
from repro.query import code_patterns
from repro.serve import PatternStore, QueryService
from conftest import NYT_SIGMA_LOW
from reporting import BenchReport

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
OUT_PATH = os.environ.get("LASH_BENCH_QUERY_OUT", "BENCH_query.json")
#: seconds each (engine, query class) pair is measured for
MEASURE_S = max(0.2, 1.0 * SCALE)
#: the acceptance floor on gap/adjacency-heavy classes
MIN_SPEEDUP = 2.0 if SCALE < 1.0 else 5.0

QUERIES = [
    "the ^ADJ ?",
    "^PRON ^VERB",
    "? ^PREP ?",
    "^DET * ^NOUN",
    "? ?",
]

#: the plan-vs-DP battery; classes marked dense are the gap/adjacency-
#: heavy shapes the compiled-plan accelerator targets (position-window
#: arithmetic instead of per-candidate DP re-interpretation)
PLAN_QUERIES = {
    "adjacent anchor": ("the ^ADJ ?", True),
    "bounded gap": ("^DET *{0,2} ^NOUN", True),
    "gap + anchor": ("the *{1,3} ?", True),
    "double gap": ("^DET *{0,2} ? *{0,2} ^NOUN", True),
    "wild adjacency": ("? ^PREP ?", True),
    "span walk": ("^PRON * ^VERB", False),
    "negated slot": ("!the ^NOUN", False),
}


def _rebuild_index(tsv_path, hierarchy):
    """What every ``lash query`` invocation pays before matching."""
    patterns = read_patterns(tsv_path)
    coded, vocabulary = code_patterns(patterns, hierarchy)
    return PatternIndex(coded, vocabulary)


def _qps(serve_one, queries, seconds):
    served = 0
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        serve_one(queries[served % len(queries)])
        served += 1
    return served / seconds


def test_store_vs_rebuild_throughput(nyt, tmp_path):
    report = BenchReport(
        "Ext. serving", "store-backed vs rebuild-from-TSV query serving"
    )
    hierarchy = nyt.hierarchy("CLP")
    params = MiningParams(NYT_SIGMA_LOW, 0, 5)
    result = Lash(params).mine(nyt.database, hierarchy)

    tsv_path = tmp_path / "patterns.tsv"
    write_patterns(result, tsv_path)
    store_path = tmp_path / "patterns.store"
    build_start = time.perf_counter()
    result.to_store(store_path)
    store_build_s = time.perf_counter() - build_start

    # --- startup cost -------------------------------------------------
    start = time.perf_counter()
    index = PatternIndex.from_result(result)
    index_build_s = time.perf_counter() - start

    start = time.perf_counter()
    store = PatternStore.open(store_path)
    store_open_s = time.perf_counter() - start

    start = time.perf_counter()
    _rebuild_index(tsv_path, hierarchy)
    rebuild_s = time.perf_counter() - start

    report.add(
        "store build (once)",
        {"s": round(store_build_s, 4), "qps": "-"},
    )
    report.add(
        "index build (in-mem)",
        {"s": round(index_build_s, 4), "qps": "-"},
    )
    report.add(
        "TSV rebuild (per query)",
        {"s": round(rebuild_s, 4), "qps": "-"},
    )
    report.add(
        "store open (per process)",
        {"s": round(store_open_s, 6), "qps": "-"},
    )

    # --- throughput ---------------------------------------------------
    service = QueryService(store, cache_size=256)
    uncached = QueryService(store, cache_size=0)
    timings = {
        "rebuild": _qps(
            lambda q: _rebuild_index(tsv_path, hierarchy).search(q, limit=10),
            QUERIES,
            seconds=2.0,
        ),
        "store": _qps(
            lambda q: uncached.query(q, limit=10), QUERIES, seconds=1.0
        ),
        "store+cache": _qps(
            lambda q: service.query(q, limit=10), QUERIES, seconds=1.0
        ),
    }
    for label in ("rebuild", "store", "store+cache"):
        report.add(
            f"{label} serving",
            {"s": "-", "qps": round(timings[label], 1)},
        )
    report.emit()

    # answers are identical across regimes
    for query in QUERIES:
        assert store.search(query) == index.search(query)
    store.close()

    # store-backed serving beats rebuild-per-query by a wide margin
    assert timings["store"] > 10 * timings["rebuild"]
    assert timings["store+cache"] >= timings["store"]
    # opening the store is far cheaper than any rebuild
    assert store_open_s < rebuild_s / 10
    assert store_open_s < index_build_s


def test_compiled_plan_throughput(nyt, tmp_path):
    report = BenchReport(
        "Ext. raw-speed matcher",
        "compiled plans (positional bitmaps) vs reference DP (qps)",
    )
    hierarchy = nyt.hierarchy("CLP")
    result = Lash(MiningParams(NYT_SIGMA_LOW, 0, 5)).mine(
        nyt.database, hierarchy
    )
    store_path = tmp_path / "patterns.store"
    result.to_store(store_path)

    accelerated = PatternStore.open(store_path)
    reference = PatternStore.open(store_path)
    reference._accelerate = False
    results: dict = {}
    try:
        # byte-identity first (full result lists, no limit): the
        # timings below must describe identical answers
        for label, (query, _) in PLAN_QUERIES.items():
            fast = [
                (m.pattern, m.frequency) for m in accelerated.search(query)
            ]
            slow = [
                (m.pattern, m.frequency) for m in reference.search(query)
            ]
            assert fast == slow, f"{label}: accelerated != DP"

        # full ranked answers, no limit: the count / total_frequency /
        # slot_fillers regime where both engines do complete work (a
        # small limit lets the DP early-exit on queries whose top-
        # ranked candidates happen to match, hiding its full cost)
        speedups_dense = []
        for label, (query, dense) in PLAN_QUERIES.items():
            plan_qps = _qps(
                lambda q: accelerated.search(q), [query], MEASURE_S
            )
            dp_qps = _qps(
                lambda q: reference.search(q), [query], MEASURE_S
            )
            speedup = plan_qps / dp_qps if dp_qps else float("inf")
            if dense:
                speedups_dense.append(speedup)
            results[label] = {
                "query": query,
                "dense": dense,
                "plan_qps": round(plan_qps, 1),
                "dp_qps": round(dp_qps, 1),
                "speedup": round(speedup, 2),
            }
            report.add(
                label,
                {
                    "plan_qps": round(plan_qps, 1),
                    "dp_qps": round(dp_qps, 1),
                    "speedup": f"{speedup:.1f}x",
                },
            )

        stats = accelerated.plan_stats()
        # every class compiled once, then served from the plan cache
        assert stats["compiles"] >= len(PLAN_QUERIES)
        assert stats["hits"] > stats["compiles"]
        assert stats["paths"]["exact"] > 0

        worst_dense = min(speedups_dense)
        results["_overall"] = {
            "min_dense_speedup": round(worst_dense, 2),
            "target": MIN_SPEEDUP,
            "plan_cache": {
                "compiles": stats["compiles"],
                "hits": stats["hits"],
            },
        }
        report.add(
            "overall",
            {
                "plan_qps": "-",
                "dp_qps": "-",
                "speedup": f">= {worst_dense:.1f}x (dense)",
            },
        )
    finally:
        accelerated.close()
        reference.close()

    payload = {
        "bench": "query_throughput",
        "patterns": len(result),
        "scale": SCALE,
        "measure_s": MEASURE_S,
        "unit": "qps",
        "queries": results,
    }
    with open(OUT_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\nwrote {OUT_PATH}", file=sys.__stdout__)
    report.emit()

    assert worst_dense >= MIN_SPEEDUP, (
        f"gap/adjacency-heavy speedup {worst_dense:.2f}x "
        f"below the {MIN_SPEEDUP}x target: {results}"
    )


#: planner-battery floors: the cost-based planner must not regress any
#: compiled-plan class by more than ~10% (measurement noise headroom in
#: --quick, where iterations are few) and must win big on skew
MIN_PLANNER_RATIO = 0.85 if SCALE < 1.0 else 0.95
MIN_SKEW_SPEEDUP = 1.2 if SCALE < 1.0 else 1.5


def _skewed_pair(store):
    """A (ubiquitous, rare) item pair mined from the actual pattern
    set — the postings skew the cost-based node ordering exists for."""
    counts: dict = {}
    for match in store:
        for item in set(match.pattern):
            if item.isalnum():
                counts[item] = counts.get(item, 0) + 1
    ranked = sorted(counts, key=counts.get)
    return ranked[-1], ranked[0]


def _cold_qps(backend, query, seconds):
    """Best single cold iteration in the window, as queries/sec.

    The plan cache is cleared every iteration: the planner's work
    (node ordering, strategy choice) happens at plan build + first
    execution, so a warm cache would time nothing but memoized mask
    reuse.  The position space and vocabulary stay warm — they are
    planner-independent.  The min-time estimator is used instead of a
    windowed mean because at ~1 ms/query a transient load spike folded
    into the mean dwarfs the few-percent planner deltas under test;
    the fastest iteration is the one that saw the machine idle, which
    is the cost being compared."""
    best = float("inf")
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        backend._plan_cache.clear()
        start = time.perf_counter()
        backend.search(query)
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return 1.0 / best if best > 0 else float("inf")


def test_planner_battery(nyt, tmp_path):
    """Cost-based planner vs the legacy cardinality ordering, cold.

    Baseline is ``set_planner("cardinality", "exact")`` — the node
    order and strategy the engine shipped with before the planner.
    The cost planner must hold every compiled-plan regression class
    (ratio >= MIN_PLANNER_RATIO) and win >= MIN_SKEW_SPEEDUP on at
    least one postings-skew class, with byte-identical answers across
    every ordering and strategy first.
    """
    report = BenchReport(
        "Ext. query planner",
        "cost-based planning vs cardinality order (cold plans, qps)",
    )
    hierarchy = nyt.hierarchy("CLP")
    result = Lash(MiningParams(NYT_SIGMA_LOW, 0, 5)).mine(
        nyt.database, hierarchy
    )
    store_path = tmp_path / "patterns.store"
    result.to_store(store_path)

    store = PatternStore.open(store_path)
    results: dict = {}
    try:
        common, rare = _skewed_pair(store)
        battery = {
            label: query for label, (query, _) in PLAN_QUERIES.items()
        }
        skew_classes = {
            "skewed pair": f"{common} {rare}",
            "floored rare": f"?@2 {rare}",
        }
        battery.update(skew_classes)

        # byte-identity across every ordering x strategy before timing
        from repro.query.cost import PLAN_ORDERS, PLAN_STRATEGIES

        for label, query in battery.items():
            store.set_planner()
            reference = [
                (m.pattern, m.frequency) for m in store.search(query)
            ]
            for order in PLAN_ORDERS:
                for strategy in (None, *PLAN_STRATEGIES):
                    store.set_planner(order, strategy)
                    got = [
                        (m.pattern, m.frequency)
                        for m in store.search(query)
                    ]
                    assert got == reference, (label, order, strategy)

        best_skew = 0.0
        worst_ratio = float("inf")
        for label, query in battery.items():
            # interleave rounds and keep each config's best window: a
            # single contiguous window is at the mercy of transient
            # machine load, which at ~1 ms/query swamps the
            # few-percent planner deltas under test
            rounds = 3
            baseline_qps = 0.0
            planner_qps = 0.0
            for _ in range(rounds):
                store.set_planner("cardinality", "exact")
                baseline_qps = max(
                    baseline_qps,
                    _cold_qps(store, query, MEASURE_S / rounds),
                )
                store.set_planner("cost", None)
                planner_qps = max(
                    planner_qps,
                    _cold_qps(store, query, MEASURE_S / rounds),
                )
            ratio = (
                planner_qps / baseline_qps if baseline_qps else float("inf")
            )
            if label in skew_classes:
                best_skew = max(best_skew, ratio)
            else:
                worst_ratio = min(worst_ratio, ratio)
            results[label] = {
                "query": query,
                "skewed": label in skew_classes,
                "baseline_qps": round(baseline_qps, 1),
                "planner_qps": round(planner_qps, 1),
                "ratio": round(ratio, 2),
            }
            report.add(
                label,
                {
                    "base_qps": round(baseline_qps, 1),
                    "cost_qps": round(planner_qps, 1),
                    "ratio": f"{ratio:.2f}x",
                },
            )
        store.set_planner()
    finally:
        store.close()

    results["_overall"] = {
        "worst_regression_ratio": round(worst_ratio, 2),
        "best_skew_speedup": round(best_skew, 2),
        "ratio_floor": MIN_PLANNER_RATIO,
        "skew_target": MIN_SKEW_SPEEDUP,
    }
    report.add(
        "overall",
        {
            "base_qps": "-",
            "cost_qps": "-",
            "ratio": (
                f">= {worst_ratio:.2f}x, skew {best_skew:.2f}x"
            ),
        },
    )

    # merge into the battery file the compiled-plan test wrote (this
    # test runs after it in file order; standalone runs start fresh)
    try:
        with open(OUT_PATH, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        payload = {"bench": "query_throughput", "scale": SCALE}
    payload["planner"] = results
    with open(OUT_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\nwrote {OUT_PATH}", file=sys.__stdout__)
    report.emit()

    assert worst_ratio >= MIN_PLANNER_RATIO, (
        f"cost planner regressed a compiled-plan class to "
        f"{worst_ratio:.2f}x of baseline: {results}"
    )
    assert best_skew >= MIN_SKEW_SPEEDUP, (
        f"best skew-class speedup {best_skew:.2f}x below the "
        f"{MIN_SKEW_SPEEDUP}x target: {results}"
    )


if __name__ == "__main__":
    # `python benchmarks/bench_query_throughput.py [--quick]` runs this
    # file through pytest — `--quick` is the CI smoke mode
    import pytest

    argv = [arg for arg in sys.argv[1:] if arg != "--quick"]
    sys.exit(pytest.main([__file__, "-q", *argv]))
