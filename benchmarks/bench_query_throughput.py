"""Extension — query serving throughput: store vs rebuild, plan vs DP.

Two batteries over the same mined NYT-slice pattern set:

* **store vs rebuild** — the split the serving subsystem exists for:
  ``lash query`` rebuilds a vocabulary and inverted index from the
  patterns TSV on every invocation; ``lash serve`` opens a binary
  :class:`~repro.serve.store.PatternStore` once and answers from it.
  Store-backed serving must sustain thousands of queries/sec where
  rebuild-per-query manages a few, and store ``open()`` must beat any
  rebuild by orders of magnitude.

* **compiled plans vs reference DP** — the raw-speed matcher: the same
  store handle answered through compiled query plans (positional
  bitmap algebra, plan cache warm — the steady state a server lives
  in) vs the legacy per-candidate DP (``_accelerate = False``).
  Byte-identity is asserted on every query class before timing, so the
  speedup can't come from serving different answers.  The target the
  acceptance gate enforces: **≥5×** on gap/adjacency-heavy classes
  (≥2× in ``--quick`` CI mode, where the corpus is a tenth the size
  and constant overheads dominate).

Results persist to ``BENCH_query.json`` (override with
``LASH_BENCH_QUERY_OUT``) in the same shape as ``BENCH_router.json``:
per-class and overall numbers for the perf trajectory.
"""

import json
import os
import sys
import time

if __name__ == "__main__" and "--quick" in sys.argv:
    # CI smoke entry point: shrink the corpus before conftest reads it
    os.environ.setdefault("REPRO_BENCH_SCALE", "0.1")

from repro import Lash, MiningParams, PatternIndex
from repro.io import read_patterns, write_patterns
from repro.query import code_patterns
from repro.serve import PatternStore, QueryService
from conftest import NYT_SIGMA_LOW
from reporting import BenchReport

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
OUT_PATH = os.environ.get("LASH_BENCH_QUERY_OUT", "BENCH_query.json")
#: seconds each (engine, query class) pair is measured for
MEASURE_S = max(0.2, 1.0 * SCALE)
#: the acceptance floor on gap/adjacency-heavy classes
MIN_SPEEDUP = 2.0 if SCALE < 1.0 else 5.0

QUERIES = [
    "the ^ADJ ?",
    "^PRON ^VERB",
    "? ^PREP ?",
    "^DET * ^NOUN",
    "? ?",
]

#: the plan-vs-DP battery; classes marked dense are the gap/adjacency-
#: heavy shapes the compiled-plan accelerator targets (position-window
#: arithmetic instead of per-candidate DP re-interpretation)
PLAN_QUERIES = {
    "adjacent anchor": ("the ^ADJ ?", True),
    "bounded gap": ("^DET *{0,2} ^NOUN", True),
    "gap + anchor": ("the *{1,3} ?", True),
    "double gap": ("^DET *{0,2} ? *{0,2} ^NOUN", True),
    "wild adjacency": ("? ^PREP ?", True),
    "span walk": ("^PRON * ^VERB", False),
    "negated slot": ("!the ^NOUN", False),
}


def _rebuild_index(tsv_path, hierarchy):
    """What every ``lash query`` invocation pays before matching."""
    patterns = read_patterns(tsv_path)
    coded, vocabulary = code_patterns(patterns, hierarchy)
    return PatternIndex(coded, vocabulary)


def _qps(serve_one, queries, seconds):
    served = 0
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        serve_one(queries[served % len(queries)])
        served += 1
    return served / seconds


def test_store_vs_rebuild_throughput(nyt, tmp_path):
    report = BenchReport(
        "Ext. serving", "store-backed vs rebuild-from-TSV query serving"
    )
    hierarchy = nyt.hierarchy("CLP")
    params = MiningParams(NYT_SIGMA_LOW, 0, 5)
    result = Lash(params).mine(nyt.database, hierarchy)

    tsv_path = tmp_path / "patterns.tsv"
    write_patterns(result, tsv_path)
    store_path = tmp_path / "patterns.store"
    build_start = time.perf_counter()
    result.to_store(store_path)
    store_build_s = time.perf_counter() - build_start

    # --- startup cost -------------------------------------------------
    start = time.perf_counter()
    index = PatternIndex.from_result(result)
    index_build_s = time.perf_counter() - start

    start = time.perf_counter()
    store = PatternStore.open(store_path)
    store_open_s = time.perf_counter() - start

    start = time.perf_counter()
    _rebuild_index(tsv_path, hierarchy)
    rebuild_s = time.perf_counter() - start

    report.add(
        "store build (once)",
        {"s": round(store_build_s, 4), "qps": "-"},
    )
    report.add(
        "index build (in-mem)",
        {"s": round(index_build_s, 4), "qps": "-"},
    )
    report.add(
        "TSV rebuild (per query)",
        {"s": round(rebuild_s, 4), "qps": "-"},
    )
    report.add(
        "store open (per process)",
        {"s": round(store_open_s, 6), "qps": "-"},
    )

    # --- throughput ---------------------------------------------------
    service = QueryService(store, cache_size=256)
    uncached = QueryService(store, cache_size=0)
    timings = {
        "rebuild": _qps(
            lambda q: _rebuild_index(tsv_path, hierarchy).search(q, limit=10),
            QUERIES,
            seconds=2.0,
        ),
        "store": _qps(
            lambda q: uncached.query(q, limit=10), QUERIES, seconds=1.0
        ),
        "store+cache": _qps(
            lambda q: service.query(q, limit=10), QUERIES, seconds=1.0
        ),
    }
    for label in ("rebuild", "store", "store+cache"):
        report.add(
            f"{label} serving",
            {"s": "-", "qps": round(timings[label], 1)},
        )
    report.emit()

    # answers are identical across regimes
    for query in QUERIES:
        assert store.search(query) == index.search(query)
    store.close()

    # store-backed serving beats rebuild-per-query by a wide margin
    assert timings["store"] > 10 * timings["rebuild"]
    assert timings["store+cache"] >= timings["store"]
    # opening the store is far cheaper than any rebuild
    assert store_open_s < rebuild_s / 10
    assert store_open_s < index_build_s


def test_compiled_plan_throughput(nyt, tmp_path):
    report = BenchReport(
        "Ext. raw-speed matcher",
        "compiled plans (positional bitmaps) vs reference DP (qps)",
    )
    hierarchy = nyt.hierarchy("CLP")
    result = Lash(MiningParams(NYT_SIGMA_LOW, 0, 5)).mine(
        nyt.database, hierarchy
    )
    store_path = tmp_path / "patterns.store"
    result.to_store(store_path)

    accelerated = PatternStore.open(store_path)
    reference = PatternStore.open(store_path)
    reference._accelerate = False
    results: dict = {}
    try:
        # byte-identity first (full result lists, no limit): the
        # timings below must describe identical answers
        for label, (query, _) in PLAN_QUERIES.items():
            fast = [
                (m.pattern, m.frequency) for m in accelerated.search(query)
            ]
            slow = [
                (m.pattern, m.frequency) for m in reference.search(query)
            ]
            assert fast == slow, f"{label}: accelerated != DP"

        # full ranked answers, no limit: the count / total_frequency /
        # slot_fillers regime where both engines do complete work (a
        # small limit lets the DP early-exit on queries whose top-
        # ranked candidates happen to match, hiding its full cost)
        speedups_dense = []
        for label, (query, dense) in PLAN_QUERIES.items():
            plan_qps = _qps(
                lambda q: accelerated.search(q), [query], MEASURE_S
            )
            dp_qps = _qps(
                lambda q: reference.search(q), [query], MEASURE_S
            )
            speedup = plan_qps / dp_qps if dp_qps else float("inf")
            if dense:
                speedups_dense.append(speedup)
            results[label] = {
                "query": query,
                "dense": dense,
                "plan_qps": round(plan_qps, 1),
                "dp_qps": round(dp_qps, 1),
                "speedup": round(speedup, 2),
            }
            report.add(
                label,
                {
                    "plan_qps": round(plan_qps, 1),
                    "dp_qps": round(dp_qps, 1),
                    "speedup": f"{speedup:.1f}x",
                },
            )

        stats = accelerated.plan_stats()
        # every class compiled once, then served from the plan cache
        assert stats["compiles"] >= len(PLAN_QUERIES)
        assert stats["hits"] > stats["compiles"]
        assert stats["paths"]["exact"] > 0

        worst_dense = min(speedups_dense)
        results["_overall"] = {
            "min_dense_speedup": round(worst_dense, 2),
            "target": MIN_SPEEDUP,
            "plan_cache": {
                "compiles": stats["compiles"],
                "hits": stats["hits"],
            },
        }
        report.add(
            "overall",
            {
                "plan_qps": "-",
                "dp_qps": "-",
                "speedup": f">= {worst_dense:.1f}x (dense)",
            },
        )
    finally:
        accelerated.close()
        reference.close()

    payload = {
        "bench": "query_throughput",
        "patterns": len(result),
        "scale": SCALE,
        "measure_s": MEASURE_S,
        "unit": "qps",
        "queries": results,
    }
    with open(OUT_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\nwrote {OUT_PATH}", file=sys.__stdout__)
    report.emit()

    assert worst_dense >= MIN_SPEEDUP, (
        f"gap/adjacency-heavy speedup {worst_dense:.2f}x "
        f"below the {MIN_SPEEDUP}x target: {results}"
    )


if __name__ == "__main__":
    # `python benchmarks/bench_query_throughput.py [--quick]` runs this
    # file through pytest — `--quick` is the CI smoke mode
    import pytest

    argv = [arg for arg in sys.argv[1:] if arg != "--quick"]
    sys.exit(pytest.main([__file__, "-q", *argv]))
