"""Extension — store-backed serving vs per-query index rebuild.

The ``lash query`` command rebuilds a vocabulary and inverted index from
the patterns TSV on every invocation; ``lash serve`` opens a binary
:class:`~repro.serve.store.PatternStore` once and answers from it.  This
bench quantifies the split the serving subsystem exists for:

* **startup** — store ``open()`` is O(header) and must beat both the
  TSV rebuild and the in-memory index build by orders of magnitude;
* **throughput** — queries/sec through a warm :class:`QueryService`
  (store-backed, with and without its LRU cache) vs the
  rebuild-per-query regime a stateless CLI imposes.

Shape targets: store-backed serving sustains thousands of queries/sec;
rebuild-per-query manages a few; the cache multiplies throughput again
on repeated traffic.
"""

import time

from repro import Lash, MiningParams, PatternIndex
from repro.io import read_patterns, write_patterns
from repro.query import code_patterns
from repro.serve import PatternStore, QueryService
from conftest import NYT_SIGMA_LOW
from reporting import BenchReport

QUERIES = [
    "the ^ADJ ?",
    "^PRON ^VERB",
    "? ^PREP ?",
    "^DET * ^NOUN",
    "? ?",
]


def _rebuild_index(tsv_path, hierarchy):
    """What every ``lash query`` invocation pays before matching."""
    patterns = read_patterns(tsv_path)
    coded, vocabulary = code_patterns(patterns, hierarchy)
    return PatternIndex(coded, vocabulary)


def test_store_vs_rebuild_throughput(benchmark, nyt, tmp_path):
    report = BenchReport(
        "Ext. serving", "store-backed vs rebuild-from-TSV query serving"
    )
    hierarchy = nyt.hierarchy("CLP")
    params = MiningParams(NYT_SIGMA_LOW, 0, 5)
    result = Lash(params).mine(nyt.database, hierarchy)

    tsv_path = tmp_path / "patterns.tsv"
    write_patterns(result, tsv_path)
    store_path = tmp_path / "patterns.store"
    build_start = time.perf_counter()
    result.to_store(store_path)
    store_build_s = time.perf_counter() - build_start

    # --- startup cost -------------------------------------------------
    start = time.perf_counter()
    index = PatternIndex.from_result(result)
    index_build_s = time.perf_counter() - start

    start = time.perf_counter()
    store = PatternStore.open(store_path)
    store_open_s = time.perf_counter() - start

    start = time.perf_counter()
    _rebuild_index(tsv_path, hierarchy)
    rebuild_s = time.perf_counter() - start

    report.add(
        "store build (once)",
        {"s": round(store_build_s, 4), "qps": "-"},
    )
    report.add(
        "index build (in-mem)",
        {"s": round(index_build_s, 4), "qps": "-"},
    )
    report.add(
        "TSV rebuild (per query)",
        {"s": round(rebuild_s, 4), "qps": "-"},
    )
    report.add(
        "store open (per process)",
        {"s": round(store_open_s, 6), "qps": "-"},
    )

    # --- throughput ---------------------------------------------------
    def qps(serve_one, seconds=1.0):
        served = 0
        deadline = time.perf_counter() + seconds
        while time.perf_counter() < deadline:
            serve_one(QUERIES[served % len(QUERIES)])
            served += 1
        return served / seconds

    service = QueryService(store, cache_size=256)
    uncached = QueryService(store, cache_size=0)
    timings = {}

    def battery():
        timings["rebuild"] = qps(
            lambda q: _rebuild_index(tsv_path, hierarchy).search(q, limit=10),
            seconds=2.0,
        )
        timings["store"] = qps(lambda q: uncached.query(q, limit=10))
        timings["store+cache"] = qps(lambda q: service.query(q, limit=10))
        return timings

    benchmark.pedantic(battery, rounds=1, iterations=1)
    for label in ("rebuild", "store", "store+cache"):
        report.add(
            f"{label} serving",
            {"s": "-", "qps": round(timings[label], 1)},
        )
    report.emit()

    # answers are identical across regimes
    for query in QUERIES:
        assert store.search(query) == index.search(query)
    store.close()

    # store-backed serving beats rebuild-per-query by a wide margin
    assert timings["store"] > 10 * timings["rebuild"]
    assert timings["store+cache"] >= timings["store"]
    # opening the store is far cheaper than any rebuild
    assert store_open_s < rebuild_s / 10
    assert store_open_s < index_build_s
