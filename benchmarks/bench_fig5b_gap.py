"""Fig. 5(b) — effect of maximum gap γ (AMZN-h8, σ fixed, λ=5).

Paper: map time is largely independent of γ (rewrites barely change), but
reduce time grows steeply because the mining search space explodes with
the gap.  Shape target: reduce time strictly grows from γ=0 to γ=3 and
dominates the growth in total time; map time stays within a constant
factor.
"""

from repro import Lash, MiningParams
from conftest import AMZN_SIGMA
from reporting import BenchReport

GAMMAS = [0, 1, 2, 3]


def test_fig5b_effect_of_gap(benchmark, amzn):
    report = BenchReport("Fig 5(b)", "effect of gap (AMZN-h8, l=5)")
    sigma = 2 * AMZN_SIGMA
    phase_rows = {}
    for gamma in GAMMAS:
        result = Lash(MiningParams(sigma, gamma, 5)).mine(
            amzn.database, amzn.hierarchy(8)
        )
        times = result.phase_times()
        phase_rows[gamma] = times
        report.add(f"gamma={gamma}", {
            **times.row(), "Patterns": len(result),
        })
    report.emit()

    benchmark.pedantic(
        lambda: Lash(MiningParams(sigma, 0, 5)).mine(
            amzn.database, amzn.hierarchy(8)
        ),
        rounds=1, iterations=1,
    )

    assert phase_rows[3].reduce_s > phase_rows[0].reduce_s
    # reduce growth outpaces map growth (map nearly flat in the paper)
    reduce_growth = phase_rows[3].reduce_s / max(phase_rows[0].reduce_s, 1e-9)
    map_growth = phase_rows[3].map_s / max(phase_rows[0].map_s, 1e-9)
    assert reduce_growth > map_growth
