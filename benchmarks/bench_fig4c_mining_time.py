"""Fig. 4(c) — local mining time: BFS vs DFS vs PSM vs PSM+Index (NYT).

Paper: PSM 9–22× faster than BFS (which ran out of memory at CLP λ=7) and
2.5–3.5× faster than DFS; indexing helps at larger λ and deeper
hierarchies.  We time only the mining of prebuilt partitions — the exact
analogue of the paper's reduce-phase measurement.

Extension beyond the paper: a SPAM-style bitmap miner as a fifth series
(another all-sequences miner, so PSM must beat it too).
"""

import time

from repro import (
    BfsMiner,
    DfsMiner,
    MiningParams,
    PivotSequenceMiner,
    SpamMiner,
    build_vocabulary,
)
from repro.core import build_partitions
from repro.core.psm import mine_partitions
from conftest import NYT_SIGMA_HIGH, NYT_SIGMA_LOW
from reporting import BenchReport

SETTINGS = [
    ("LP", NYT_SIGMA_HIGH, 5),
    ("LP", NYT_SIGMA_LOW, 5),
    ("CLP", NYT_SIGMA_LOW, 5),
    ("CLP", NYT_SIGMA_LOW, 7),
]

MINERS = {
    "BFS": lambda v, p: BfsMiner(v, p),
    "DFS": lambda v, p: DfsMiner(v, p),
    "SPAM": lambda v, p: SpamMiner(v, p),
    "PSM": lambda v, p: PivotSequenceMiner(v, p, index_mode="none"),
    "PSM+Index": lambda v, p: PivotSequenceMiner(v, p, index_mode="exact"),
}


def _partitions_for(nyt, variant, params):
    hierarchy = nyt.hierarchy(variant)
    vocabulary = build_vocabulary(nyt.database, hierarchy)
    encoded = [vocabulary.encode_sequence(t) for t in nyt.database]
    return vocabulary, build_partitions(vocabulary, encoded, params)


def test_fig4c_local_mining_time(benchmark, nyt):
    report = BenchReport("Fig 4(c)", "local mining time (s)")
    timings = {}
    reference_outputs = {}
    for variant, sigma, lam in SETTINGS:
        params = MiningParams(sigma, 0, lam)
        vocabulary, partitions = _partitions_for(nyt, variant, params)
        label = f"{variant}({sigma},0,{lam})"
        row = {}
        for name, factory in MINERS.items():
            miner = factory(vocabulary, params)
            start = time.perf_counter()
            output = mine_partitions(miner, partitions)
            row[name] = time.perf_counter() - start
            if label in reference_outputs:
                assert output == reference_outputs[label], name
            reference_outputs[label] = output
        timings[label] = row
        report.add(label, {
            **{k: round(v, 2) for k, v in row.items()},
            "PSM vs BFS": round(row["BFS"] / row["PSM"], 1),
            "PSM vs DFS": round(row["DFS"] / row["PSM"], 1),
        })
    report.emit()

    # benchmark PSM+Index on the heaviest setting
    variant, sigma, lam = SETTINGS[-1]
    params = MiningParams(sigma, 0, lam)
    vocabulary, partitions = _partitions_for(nyt, variant, params)
    benchmark.pedantic(
        lambda: mine_partitions(
            PivotSequenceMiner(vocabulary, params, index_mode="exact"),
            partitions,
        ),
        rounds=1, iterations=1,
    )

    # shape: PSM beats BFS and DFS in every setting
    for row in timings.values():
        assert row["PSM"] < row["BFS"]
        assert row["PSM"] < row["DFS"]
