"""Extension — pattern-index query latency (the Sec. 1 exploration apps).

The paper motivates GSM with interactive exploration (Google n-gram
viewer, Netspeak).  Interactivity means queries must answer in
milliseconds over a mined output of thousands of patterns.  This bench
builds a :class:`repro.query.PatternIndex` over the NYT-CLP output and
times a battery of representative queries.

Shape targets: index construction is a small fraction of mining time;
every query answers well under interactive latency; selective queries
(with a concrete token) are faster than wildcard-only scans.
"""

import time

from repro import Lash, MiningParams, PatternIndex
from conftest import NYT_SIGMA_LOW
from reporting import BenchReport

QUERIES = [
    "the ^ADJ ?",
    "^PRON ^VERB",
    "? ^PREP ?",
    "^DET * ^NOUN",
    "? ?",
    "*",
]


def test_query_latency(benchmark, nyt):
    report = BenchReport("Ext. query", "pattern-index latency, NYT-CLP")
    params = MiningParams(NYT_SIGMA_LOW, 0, 5)
    result = Lash(params).mine(nyt.database, nyt.hierarchy("CLP"))

    start = time.perf_counter()
    index = PatternIndex.from_result(result)
    build_s = time.perf_counter() - start
    report.add(
        "index build",
        {"matches": len(index), "ms": round(1000 * build_s, 2)},
    )

    timings = {}

    def battery():
        for query in QUERIES:
            start = time.perf_counter()
            matches = index.search(query)
            timings[query] = (len(matches), time.perf_counter() - start)
        return timings

    benchmark.pedantic(battery, rounds=3, iterations=1)
    for query, (count, elapsed) in timings.items():
        report.add(query, {"matches": count, "ms": round(1000 * elapsed, 2)})
    report.emit()

    # every query is interactive (well under 250 ms even on slow machines)
    assert all(elapsed < 0.25 for _, elapsed in timings.values())
    # "*" matches the whole output; selective queries match a strict subset
    assert timings["*"][0] == len(index)
    assert 0 < timings["the ^ADJ ?"][0] < timings["? ?"][0]
