"""Fig. 4(b) — map output bytes: baselines vs LASH (NYT, γ=0).

Paper: the baselines shuffle hundreds of GB while LASH stays far below
(NA for the aborted CLP runs).  Shape target: LASH's MAP_OUTPUT_BYTES is a
small fraction of the naïve algorithm's in every setting, and the naïve
volume explodes with λ and hierarchy depth.
"""

from repro import Lash, MiningParams, NaiveAlgorithm, SemiNaiveAlgorithm
from repro.mapreduce import C
from conftest import NYT_SIGMA_HIGH, NYT_SIGMA_LOW
from reporting import BenchReport

SETTINGS = [
    ("P", NYT_SIGMA_HIGH, 3),
    ("P", NYT_SIGMA_LOW, 3),
    ("P", NYT_SIGMA_LOW, 5),
    ("CLP", NYT_SIGMA_LOW, 5),
]


def test_fig4b_map_output_bytes(benchmark, nyt):
    report = BenchReport("Fig 4(b)", "map output bytes (MB)")
    volumes = {}
    for variant, sigma, lam in SETTINGS:
        params = MiningParams(sigma, 0, lam)
        hierarchy = nyt.hierarchy(variant)
        rows = {}
        for name, algorithm in [
            ("Naive", NaiveAlgorithm(params)),
            ("Semi-naive", SemiNaiveAlgorithm(params)),
            ("LASH", Lash(params)),
        ]:
            result = algorithm.mine(nyt.database, hierarchy)
            rows[name] = result.counters[C.MAP_OUTPUT_BYTES]
        label = f"{variant}({sigma},0,{lam})"
        volumes[label] = rows
        report.add(label, {
            "Naive": round(rows["Naive"] / 1e6, 2),
            "Semi-naive": round(rows["Semi-naive"] / 1e6, 2),
            "LASH": round(rows["LASH"] / 1e6, 2),
            "Ratio": round(rows["Naive"] / max(rows["LASH"], 1), 1),
        })
    report.emit()

    benchmark.pedantic(
        lambda: Lash(MiningParams(NYT_SIGMA_LOW, 0, 3)).mine(
            nyt.database, nyt.hierarchy("P")
        ),
        rounds=1, iterations=1,
    )

    for rows in volumes.values():
        assert rows["LASH"] < rows["Naive"]
        assert rows["Semi-naive"] <= rows["Naive"]
    # blowup with lambda for the baselines is much stronger than for LASH
    naive_growth = (
        volumes[f"P({NYT_SIGMA_LOW},0,5)"]["Naive"]
        / volumes[f"P({NYT_SIGMA_LOW},0,3)"]["Naive"]
    )
    lash_growth = (
        volumes[f"P({NYT_SIGMA_LOW},0,5)"]["LASH"]
        / volumes[f"P({NYT_SIGMA_LOW},0,3)"]["LASH"]
    )
    assert naive_growth > lash_growth
