"""Fig. 6(c) — weak scalability (NYT-CLP; 25%/2, 50%/4, 100%/8 nodes).

Paper: total time stays nearly constant when data and nodes double
together, rising slightly because the output itself grows superlinearly
(43M → 99M → 220M patterns, a 2.2× step).  Shape targets: the weak-scaling
curve is much flatter than the data-growth factor; output count more than
doubles per step.
"""

from repro import ClusterSpec, Lash, MiningParams
from conftest import NYT_SIGMA_LOW
from reporting import BenchReport

STEPS = [(0.25, 2), (0.5, 4), (1.0, 8)]


def test_fig6c_weak_scalability(benchmark, nyt):
    report = BenchReport("Fig 6(c)", "weak scalability (NYT-CLP)")
    totals = {}
    outputs = {}
    for fraction, nodes in STEPS:
        sample = nyt.database.sample(fraction, seed=1)
        result = Lash(
            MiningParams(NYT_SIGMA_LOW, 0, 5),
            num_map_tasks=80, num_reduce_tasks=80,
        ).mine(sample, nyt.hierarchy("CLP"))
        cluster = ClusterSpec(nodes=nodes, map_slots_per_node=8,
                              reduce_slots_per_node=8)
        times = result.cluster_times(cluster)
        totals[(fraction, nodes)] = times
        outputs[(fraction, nodes)] = len(result)
        report.add(f"{nodes} nodes ({int(fraction * 100)}%)", {
            **times.row(), "Patterns": len(result),
        })
    report.emit()

    benchmark.pedantic(
        lambda: Lash(MiningParams(NYT_SIGMA_LOW, 0, 5)).mine(
            nyt.database.sample(0.25, seed=1), nyt.hierarchy("CLP")
        ),
        rounds=1, iterations=1,
    )

    first = totals[STEPS[0]].total_s
    last = totals[STEPS[-1]].total_s
    # near-flat: 4x data on 4x nodes costs far less than 4x time
    assert last < first * 3
    # the paper's explanation: output grows faster than the data
    assert outputs[STEPS[-1]] > 2 * outputs[STEPS[0]]
