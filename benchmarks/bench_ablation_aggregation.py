"""Ablation — combiner aggregation of duplicate rewritten sequences.

Paper Sec. 4.4: *"We use combine functionality of Hadoop to aggregate such
duplicated sequences … saves communication cost and reduces the
computational cost of the GSM algorithm"*.  This bench runs the LASH
partitioning+mining job with and without the combiner and reports the
shuffle volume and reducer input.

Shape targets: with the combiner, shuffle bytes and reduce-input records
drop; the mined answer is identical.
"""

from repro import Lash, MiningParams
from repro.core.lash import PartitionMineJob
from repro.mapreduce import MapReduceEngine
from conftest import NYT_SIGMA_LOW
from reporting import BenchReport


class NoCombinerJob(PartitionMineJob):
    """The same job with Hadoop's combiner turned off."""

    has_combiner = False


def test_ablation_aggregation(benchmark, nyt):
    report = BenchReport(
        "Ablation aggregation", "combiner on/off, NYT-CLP"
    )
    params = MiningParams(NYT_SIGMA_LOW, 0, 5)
    hierarchy = nyt.hierarchy("CLP")
    lash = Lash(params)
    vocabulary, _ = lash.preprocess(nyt.database, hierarchy)
    encoded = [vocabulary.encode_sequence(t) for t in nyt.database]
    engine = MapReduceEngine(num_map_tasks=8, num_reduce_tasks=8)

    def run(job_cls):
        miner = lash.miner_factory(vocabulary, params)
        job = job_cls(vocabulary, params, miner)
        return engine.run(job, encoded)

    def sweep():
        return {"combiner": run(PartitionMineJob), "none": run(NoCombinerJob)}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    with_c, without_c = results["combiner"], results["none"]
    assert dict(with_c.output) == dict(without_c.output)

    for label, result in (
        ("no combiner", without_c),
        ("with combiner", with_c),
    ):
        report.add(label, {
            "Shuffle MB": round(result.counters["SHUFFLE_BYTES"] / 1e6, 2),
            "Reduce input records": result.counters["REDUCE_INPUT_RECORDS"],
            "Reduce (s)": round(sum(result.metrics.reduce_task_s), 2),
        })
    report.emit()

    assert (
        with_c.counters["SHUFFLE_BYTES"]
        <= without_c.counters["SHUFFLE_BYTES"]
    )
    assert (
        with_c.counters["REDUCE_INPUT_RECORDS"]
        <= without_c.counters["REDUCE_INPUT_RECORDS"]
    )
