"""Fig. 6(a) — data scalability (NYT-CLP, σ fixed, λ=5, fixed cluster).

Paper: map and reduce times grow linearly as the input grows from 25% to
100%.  We mine nested samples and report simulated 10-node-cluster phase
makespans from the measured task profiles.  Shape targets: monotone growth,
roughly linear (4× data within ~8× time, i.e. superlinearity bounded).
"""

from repro import ClusterSpec, Lash, MiningParams
from conftest import NYT_SIGMA_LOW
from reporting import BenchReport

FRACTIONS = [0.25, 0.5, 0.75, 1.0]
CLUSTER = ClusterSpec(nodes=10, map_slots_per_node=8, reduce_slots_per_node=8)


def test_fig6a_data_scalability(benchmark, nyt):
    report = BenchReport("Fig 6(a)", "data scalability (NYT-CLP)")
    totals = {}
    for fraction in FRACTIONS:
        # σ stays fixed while the data grows, exactly as in the paper
        sample = nyt.database.sample(fraction, seed=1)
        result = Lash(MiningParams(NYT_SIGMA_LOW, 0, 5), num_map_tasks=80,
                      num_reduce_tasks=80).mine(sample, nyt.hierarchy("CLP"))
        times = result.cluster_times(CLUSTER)
        totals[fraction] = times
        report.add(f"{int(fraction * 100)}%", {
            **times.row(), "Patterns": len(result),
        })
    report.emit()

    benchmark.pedantic(
        lambda: Lash(MiningParams(NYT_SIGMA_LOW, 0, 5)).mine(
            nyt.database.sample(0.25, seed=1), nyt.hierarchy("CLP")
        ),
        rounds=1, iterations=1,
    )

    series = [totals[f].total_s for f in FRACTIONS]
    assert series == sorted(series)  # monotone growth
    # roughly linear: 4x data should stay well under 10x time
    assert series[-1] < series[0] * 10
