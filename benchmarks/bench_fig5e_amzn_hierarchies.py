"""Fig. 5(e) — effect of hierarchy depth (AMZN, σ fixed, γ=2, λ=5).

Paper: map time rises slightly with depth (rewrites walk longer chains);
reduce time rises markedly because more intermediate items mean more
partitions and deeper generalization — but the h4→h8 step is muted because
most products have ≤4 ancestor categories.  Shape targets: total time grows
with depth; h4→h8 growth smaller than h2→h4 growth.
"""

from repro import Lash, MiningParams
from conftest import AMZN_SIGMA
from reporting import BenchReport

LEVELS = [2, 3, 4, 8]


def test_fig5e_effect_of_hierarchy_depth(benchmark, amzn):
    report = BenchReport("Fig 5(e)", "effect of hierarchy depth (AMZN)")
    sigma = 2 * AMZN_SIGMA
    totals = {}
    for levels in LEVELS:
        result = Lash(MiningParams(sigma, 2, 5)).mine(
            amzn.database, amzn.hierarchy(levels)
        )
        times = result.phase_times()
        totals[levels] = times
        report.add(f"h{levels}", {
            **times.row(),
            "Patterns": len(result),
            "Partitions": result.counters["REDUCE_INPUT_GROUPS"],
        })
    report.emit()

    benchmark.pedantic(
        lambda: Lash(MiningParams(sigma, 2, 5)).mine(
            amzn.database, amzn.hierarchy(2)
        ),
        rounds=1, iterations=1,
    )

    assert totals[8].total_s > totals[2].total_s
    assert totals[8].reduce_s > totals[2].reduce_s
    # h4 -> h8 less pronounced than h2 -> h4 (ragged chains, paper Sec. 6.5)
    growth_24 = totals[4].total_s - totals[2].total_s
    growth_48 = totals[8].total_s - totals[4].total_s
    assert growth_48 < growth_24
