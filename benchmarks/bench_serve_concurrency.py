"""Extension — serving fabric: concurrent-load throughput.

The pipelined mux wire exists to keep a cluster fast when many
clients hit it at once: one socket carries many in-flight requests,
large frames travel compressed, and ``/batch`` calls scatter as one
multi-query frame per server instead of one connection checkout per
query.  Shard servers run as **separate OS processes** (spawned
through ``lash shard-serve``, exactly the deployment shape) so server
work genuinely overlaps client work; a closed loop of concurrent
client threads then drives the same manifest served four ways —

* **mono** — the in-process ``ShardedPatternStore`` (no wire at all);
* **legacy** — the router pinned to the pre-change wire path
  (one-request-per-connection framing, per-query scatter) via the
  ``wire="legacy"``/``batched=False`` compatibility flags;
* **mux** — the pipelined, compressed, batching default;
* **mux_nozlib** — pipelining without compression, isolating the two;

across a concurrency sweep, plus a ``/batch`` fan-out phase at high
concurrency.  The single-query sweep uses the broad bulk-transfer
battery (big frames — the compression regime); the batch phase uses
the selective battery that dominates real ``/batch`` traffic (small
frames — the regime where per-exchange overhead is the cost and
batching collapses ten exchanges into two).  Every sample is checked
byte-identical against the mono answer before it counts, so the
throughput numbers can't come from serving different answers.

Full-scale runs also gate the fabric's two acceptance claims: at
concurrency >= 16 the mux wire must move ``/batch`` traffic at >= 2x
the legacy throughput, and single-query p99 must not regress more
than 10 percent.  When a committed ``BENCH_serve.json`` at the same
scale exists, mux batch throughput must also stay within 10 percent
of it.  Results persist to ``BENCH_serve.json`` (override with
``LASH_BENCH_SERVE_OUT``).
"""

import json
import os
import pathlib
import re
import subprocess
import sys
import threading
import time

if __name__ == "__main__" and "--quick" in sys.argv:
    # CI smoke entry point: shrink the corpus before conftest reads it
    os.environ.setdefault("REPRO_BENCH_SCALE", "0.1")

import repro
from repro import Lash, MiningParams
from repro.serve import QueryService, open_store
from repro.serve.router import ClusterMap, RouterBackend, ServerSpec
from conftest import NYT_SIGMA_LOW, SCALE
from reporting import BenchReport

NUM_SHARDS = 4
CONCURRENCY = (1, 4, 16)
SINGLE_ROUNDS = max(6, int(40 * SCALE))
BATCH_ROUNDS = max(4, int(12 * SCALE))
OUT_PATH = os.environ.get("LASH_BENCH_SERVE_OUT", "BENCH_serve.json")

# broad queries: large result frames, the bulk-transfer/compression
# regime (single-query sweep)
QUERIES = {
    "wildcard pair": "? ?",
    "anchored item": "the ^ADJ ?",
    "subtree walk": "^PRON ^VERB",
    "gap + floor": "^DET *{0,2} ?@5",
    "negated slot": "!the ^NOUN",
}

# selective queries: small result frames and cheap (warm-cached)
# shard-side evaluation — the exchange-overhead regime that dominates
# interactive /batch traffic, where the wire path is the difference
BATCH_QUERIES = [
    "the ?",
    "a ^NOUN",
    "^VERB the",
    "in ^DET ?",
    "^PREP the",
    "he ^VERB",
    "it ?",
    "? the ?",
]


def _spawn_server(store_path, shards):
    """Start ``lash shard-serve`` in its own process; returns
    ``(proc, (host, port))`` once the server announces its address."""
    env = dict(os.environ)
    src = str(pathlib.Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = os.pathsep.join(
        part for part in (src, env.get("PYTHONPATH")) if part
    )
    command = [
        sys.executable, "-u", "-m", "repro.cli", "shard-serve",
        "--store", str(store_path), "--port", "0", "--no-http",
    ]
    if shards is not None:
        command += ["--shards", ",".join(str(s) for s in shards)]
    proc = subprocess.Popen(
        command,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    line = proc.stdout.readline()
    match = re.search(r"on ([0-9.]+):([0-9]+)\s*$", line)
    if not match:
        proc.terminate()
        rest = proc.stdout.read()
        raise RuntimeError(f"shard-serve failed to start: {line}{rest}")
    return proc, (match.group(1), int(match.group(2)))


def _percentiles(samples):
    ordered = sorted(samples)

    def pct(p):
        index = min(len(ordered) - 1, int(round(p * (len(ordered) - 1))))
        return round(ordered[index] * 1000, 3)

    return {"p50": pct(0.50), "p95": pct(0.95), "p99": pct(0.99)}


def _closed_loop(concurrency, rounds, work):
    """Run ``work(worker_index, round_index)`` from ``concurrency``
    client threads, ``rounds`` calls each; returns (wall seconds,
    latency samples, calls).  ``work`` returns one measured latency and
    must raise on any byte mismatch."""
    samples = [[] for _ in range(concurrency)]
    errors = []
    barrier = threading.Barrier(concurrency + 1)

    def client(index):
        try:
            barrier.wait()
            for round_ in range(rounds):
                samples[index].append(work(index, round_))
        except Exception as exc:  # noqa: BLE001 - re-raised below
            errors.append(exc)
            try:
                barrier.abort()
            except Exception:  # noqa: BLE001
                pass

    threads = [
        threading.Thread(target=client, args=(i,))
        for i in range(concurrency)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start
    if errors:
        raise errors[0]
    flat = [s for worker in samples for s in worker]
    return wall, flat, len(flat)


def test_serve_concurrency(nyt, tmp_path):
    report = BenchReport(
        "Ext. serving fabric",
        "concurrent closed-loop load, mono vs wire paths",
    )
    hierarchy = nyt.hierarchy("CLP")
    result = Lash(MiningParams(NYT_SIGMA_LOW, 0, 4)).mine(
        nyt.database, hierarchy
    )
    store_path = tmp_path / "patterns.shards"
    result.to_store(store_path, shards=NUM_SHARDS)

    half = NUM_SHARDS // 2
    lower, upper = list(range(half)), list(range(half, NUM_SHARDS))
    procs = []
    routers = {}
    results: dict = {"single": {}, "batch": {}}
    try:
        addresses = []
        for shards in (lower, upper, None):  # None = full replica
            proc, address = _spawn_server(store_path, shards)
            procs.append(proc)
            addresses.append(address)
        placement = {}
        specs = []
        for address, shards in zip(
            addresses, (lower, upper, range(NUM_SHARDS))
        ):
            spec = ServerSpec(*address)
            specs.append(spec)
            for shard in shards:
                placement.setdefault(shard, []).append(spec.key)
        cluster = ClusterMap(
            specs, num_shards=NUM_SHARDS, placement=placement
        )
        routers = {
            "legacy": RouterBackend(
                cluster, wire="legacy", batched=False
            ),
            "mux": RouterBackend(cluster),
            "mux_nozlib": RouterBackend(
                cluster, compress=False, batched=False
            ),
        }

        with open_store(store_path) as mono:
            expected = {
                label: [
                    (m.pattern, m.frequency) for m in mono.search(query)
                ]
                for label, query in QUERIES.items()
            }
            labels = list(QUERIES)

            def single_work(backend):
                def work(index, round_):
                    label = labels[(index + round_) % len(labels)]
                    start = time.perf_counter()
                    got = [
                        (m.pattern, m.frequency)
                        for m in backend.search(QUERIES[label])
                    ]
                    elapsed = time.perf_counter() - start
                    assert got == expected[label], label
                    return elapsed

                return work

            backends = {"mono": mono, **routers}
            for concurrency in CONCURRENCY:
                tier = results["single"][concurrency] = {}
                row = {}
                for name, backend in backends.items():
                    wall, samples, calls = _closed_loop(
                        concurrency, SINGLE_ROUNDS, single_work(backend)
                    )
                    pct = _percentiles(samples)
                    tier[name] = {
                        "qps": round(calls / wall, 1),
                        **pct,
                    }
                    row[f"{name}_qps"] = tier[name]["qps"]
                row["legacy_p99_ms"] = tier["legacy"]["p99"]
                row["mux_p99_ms"] = results["single"][concurrency][
                    "mux"
                ]["p99"]
                report.add(f"single c={concurrency}", row)

            # /batch fan-out: the selective battery per call, served
            # through the same QueryService used by the HTTP tier
            # (cache off so every call exercises the wire)
            batch_queries = list(BATCH_QUERIES)
            want_batch = [
                {
                    k: v
                    for k, v in entry.items()
                    if k != "estimated_cost"
                }
                for entry in QueryService(mono, cache_size=0).batch(
                    batch_queries
                )
            ]

            def batch_work(service, name):
                def work(index, round_):
                    start = time.perf_counter()
                    got = service.batch(batch_queries)
                    elapsed = time.perf_counter() - start
                    stripped = [
                        {
                            k: v
                            for k, v in entry.items()
                            if k != "estimated_cost"
                        }
                        for entry in got
                    ]
                    if stripped != want_batch:
                        info = getattr(
                            service._backend, "describe", dict
                        )()
                        raise AssertionError(
                            f"{name} round {round_}: "
                            f"{[e.get('partial') for e in stripped]} "
                            f"describe={info}"
                        )
                    return elapsed

                return work

            for concurrency in CONCURRENCY:
                tier = results["batch"][concurrency] = {}
                row = {}
                for name, backend in backends.items():
                    service = QueryService(backend, cache_size=0)
                    wall, samples, calls = _closed_loop(
                        concurrency,
                        BATCH_ROUNDS,
                        batch_work(service, name),
                    )
                    tier[name] = {
                        "batches_per_s": round(calls / wall, 1),
                        "queries_per_s": round(
                            calls * len(batch_queries) / wall, 1
                        ),
                        **_percentiles(samples),
                    }
                    row[f"{name}_qps"] = tier[name]["queries_per_s"]
                row["legacy_p99_ms"] = tier["legacy"]["p99"]
                row["mux_p99_ms"] = tier["mux"]["p99"]
                report.add(f"batch c={concurrency}", row)

        for name, router in routers.items():
            info = router.describe()
            assert info["server_failures"] == 0, name
            results[f"wire_{name}"] = info["wire"]
        assert results["wire_legacy"]["frames_sent"] == 0
        assert results["wire_mux"]["compressed_frames_received"] > 0
    finally:
        for router in routers.values():
            router.close()
        for proc in procs:
            proc.terminate()
        for proc in procs:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()

    top = max(CONCURRENCY)
    speedup = round(
        results["batch"][top]["mux"]["queries_per_s"]
        / results["batch"][top]["legacy"]["queries_per_s"],
        2,
    )
    results["batch_speedup_at_top_concurrency"] = speedup
    saved = (
        results["wire_mux"]["raw_bytes_received"]
        - results["wire_mux"]["wire_bytes_received"]
    )
    print(
        f"\nmux /batch speedup at c={top}: {speedup}x legacy "
        f"({saved} wire bytes saved by compression)",
        file=sys.__stdout__,
    )

    # the mux wire must beat the legacy wire on /batch at any scale —
    # a ratio collapse means the fast path stopped engaging (CI quick
    # tier runs this); the 2x claim itself is gated at full scale only
    assert speedup >= 1.2, (
        f"mux /batch throughput at c={top} is only {speedup}x legacy"
    )
    if SCALE >= 1.0:
        # acceptance gates — only meaningful on the full corpus, where
        # frames are big enough for the wire to matter
        assert speedup >= 2.0, (
            f"mux /batch throughput at c={top} is only {speedup}x legacy"
        )
        for concurrency in CONCURRENCY:
            tier = results["single"][concurrency]
            assert tier["mux"]["p99"] <= tier["legacy"]["p99"] * 1.10, (
                f"single-query p99 regressed at c={concurrency}: "
                f"mux {tier['mux']['p99']}ms vs "
                f"legacy {tier['legacy']['p99']}ms"
            )

    baseline = None
    if os.path.exists(OUT_PATH):
        with open(OUT_PATH, encoding="utf-8") as handle:
            baseline = json.load(handle)
    if baseline is not None and baseline.get("scale") == SCALE:
        # regression gate vs the committed numbers at the same scale;
        # sub-full runs see double-digit run-to-run noise on shared
        # hardware, so they only catch collapses, not drift
        floor = 0.90 if SCALE >= 1.0 else 0.50
        before = baseline["results"]["batch"][str(top)]["mux"][
            "queries_per_s"
        ]
        now = results["batch"][top]["mux"]["queries_per_s"]
        assert now >= before * floor, (
            f"mux /batch throughput regressed vs committed baseline: "
            f"{now} < {floor} * {before}"
        )

    payload = {
        "bench": "serve_concurrency",
        "scale": SCALE,
        "patterns": len(result),
        "num_shards": NUM_SHARDS,
        "servers": 3,
        "replication": "full replica",
        "concurrency": list(CONCURRENCY),
        "single_rounds": SINGLE_ROUNDS,
        "batch_rounds": BATCH_ROUNDS,
        "unit": "ms / qps",
        "results": results,
    }
    with open(OUT_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\nwrote {OUT_PATH}", file=sys.__stdout__)
    report.emit()


if __name__ == "__main__":
    # `python benchmarks/bench_serve_concurrency.py [--quick]` runs
    # this file through pytest — `--quick` is the CI smoke mode
    import pytest

    argv = [arg for arg in sys.argv[1:] if arg != "--quick"]
    sys.exit(pytest.main([__file__, "-q", *argv]))
