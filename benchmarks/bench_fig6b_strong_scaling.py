"""Fig. 6(b) — strong scalability (NYT-CLP, fixed data, 2/4/8 nodes).

Paper: both map and reduce times fall roughly linearly as compute nodes
double.  We run the full dataset once (320 map / 80 reduce tasks measured
individually — enough tasks that every cluster size keeps its slots busy)
and schedule the measured profile onto clusters of 2, 4 and 8 nodes.
Shape targets: monotone speedup; doubling nodes gives >=1.4x per step on
the map phase.
"""

from repro import ClusterSpec, Lash, MiningParams
from conftest import NYT_SIGMA_LOW
from reporting import BenchReport

NODES = [2, 4, 8]


def test_fig6b_strong_scalability(benchmark, nyt):
    report = BenchReport("Fig 6(b)", "strong scalability (NYT-CLP)")
    result = benchmark.pedantic(
        lambda: Lash(
            MiningParams(NYT_SIGMA_LOW, 0, 5),
            num_map_tasks=320, num_reduce_tasks=80,
        ).mine(nyt.database, nyt.hierarchy("CLP")),
        rounds=1, iterations=1,
    )
    totals = {}
    for nodes in NODES:
        cluster = ClusterSpec(nodes=nodes, map_slots_per_node=8,
                              reduce_slots_per_node=8)
        times = result.cluster_times(cluster)
        totals[nodes] = times
        report.add(f"{nodes} nodes", times.row())
    report.emit()

    series = [totals[n].total_s for n in NODES]
    assert series == sorted(series, reverse=True)  # more nodes, less time
    for a, b in zip(NODES, NODES[1:]):
        assert totals[a].map_s / totals[b].map_s > 1.4
