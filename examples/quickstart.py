"""Quickstart: the paper's running example, end to end.

Builds the Fig. 1 sequence database and hierarchy, runs LASH with the
paper's parameters (σ=2, γ=1, λ=3), and prints the mined generalized
sequences — which match Sec. 2 of the paper exactly, including ``b1 D``,
a pattern that never occurs in the data and only surfaces through the
hierarchy.

Run:  python examples/quickstart.py
"""

from repro import Hierarchy, SequenceDatabase, mine

# --- the item hierarchy of Fig. 1(b) -----------------------------------
# a, c, e, f are plain items; B generalizes b1/b2/b3; b1 generalizes
# b11/b12/b13; D generalizes d1/d2.
hierarchy = Hierarchy()
for root in ("a", "B", "c", "D", "e", "f"):
    hierarchy.add_item(root)
for child in ("b1", "b2", "b3"):
    hierarchy.add_edge(child, "B")
for child in ("b11", "b12", "b13"):
    hierarchy.add_edge(child, "b1")
for child in ("d1", "d2"):
    hierarchy.add_edge(child, "D")

# --- the sequence database of Fig. 1(a) ---------------------------------
database = SequenceDatabase(
    [
        ["a", "b1", "a", "b1"],
        ["a", "b3", "c", "c", "b2"],
        ["a", "c"],
        ["b11", "a", "e", "a"],
        ["a", "b12", "d1", "c"],
        ["b13", "f", "d2"],
    ]
)

# --- mine ---------------------------------------------------------------
result = mine(database, hierarchy, sigma=2, gamma=1, lam=3)

print(f"algorithm: {result.algorithm}, {len(result)} frequent sequences\n")
print(f"{'frequency':>9}  pattern")
for pattern, freq in result.top(len(result)):
    print(f"{freq:>9}  {pattern}")

# the hierarchy makes non-obvious patterns visible:
assert result.frequency("b1", "D") == 2, "b1 D never occurs literally!"
assert result.frequency("a", "B") == 3

print("\nphase times:", result.phase_times().row())
print("bytes shuffled:", result.counters["SHUFFLE_BYTES"])
