"""Mine once, serve many: the pattern store + HTTP query server.

The exploration tools the paper cites (Google n-gram viewer, Netspeak)
are long-lived services: mining runs offline, queries arrive forever.
This script walks that whole pipeline in-process:

1. mine generalized n-grams from a synthetic corpus,
2. export them to a compact binary :class:`repro.serve.PatternStore`,
3. reopen the store (O(header) — no corpus, no rebuild),
4. serve HTTP queries from it and hit the endpoints with urllib.

Run:  python examples/pattern_server.py
"""

import json
import tempfile
import threading
import time
import urllib.parse
import urllib.request
from pathlib import Path

from repro import PatternStore, QueryService, mine
from repro.datasets import TextCorpusConfig, generate_text_corpus
from repro.serve import create_server

SIGMA, GAMMA, LAM = 25, 0, 3

print("mining …")
corpus = generate_text_corpus(TextCorpusConfig(num_sentences=4000, seed=42))
result = mine(
    corpus.database, corpus.hierarchy("CLP"), sigma=SIGMA, gamma=GAMMA,
    lam=LAM,
)
print(f"  {len(result)} generalized n-grams\n")

store_path = Path(tempfile.mkdtemp()) / "patterns.store"
result.to_store(store_path)
print(f"exported store: {store_path} ({store_path.stat().st_size} bytes)")

start = time.perf_counter()
store = PatternStore.open(store_path)
print(f"reopened in {1000 * (time.perf_counter() - start):.3f} ms "
      f"(header only: {store.describe()['patterns']} patterns)\n")

service = QueryService(store, cache_size=256)
server = create_server(service, port=0)  # ephemeral port
threading.Thread(target=server.serve_forever, daemon=True).start()
base = f"http://127.0.0.1:{server.server_port}"
print(f"serving on {base}\n")


def get(path: str) -> dict:
    with urllib.request.urlopen(base + path, timeout=10) as response:
        return json.loads(response.read())


for query in ["the ^ADJ ?", "^PRON ^VERB", "? ^PREP ?"]:
    body = get("/query?q=" + urllib.parse.quote(query) + "&limit=5")
    print(f"GET /query?q={query!r}  ({body['count']} matches, "
          f"mass {body['total_frequency']})")
    for match in body["matches"]:
        print(f"  {match['frequency']:>7}  {match['pattern']}")
    print()

print("GET /topk?n=3")
for match in get("/topk?n=3")["matches"]:
    print(f"  {match['frequency']:>7}  {match['pattern']}")

get("/query?q=" + urllib.parse.quote("the ^ADJ ?") + "&limit=5")  # cache hit
stats = get("/stats")
print(f"\nGET /stats → queries={stats['queries']} "
      f"cache_hit_rate={stats['cache_hit_rate']} "
      f"avg_latency_ms={stats['avg_latency_ms']}")

server.shutdown()
server.server_close()
store.close()
print("\ndone — in production: lash index build … && lash serve …")
