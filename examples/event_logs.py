"""Mining error-event sequences from service logs with a severity/component
hierarchy (the paper's "error logs, or event sequences" motivation).

Synthesizes per-request event traces from a miniature microservice world.
Events like ``auth.timeout`` generalize to their component (``auth``) and
to their error class (``timeout`` → ``error``), forming a DAG — each event
has *two* parents.  The paper's footnote 2 says LASH extends to DAGs; this
example exercises exactly that support and finds patterns such as
``TIMEOUT → retry → TIMEOUT`` that no single-level view reveals.

Run:  python examples/event_logs.py
"""

import random

from repro import Hierarchy, SequenceDatabase, mine

rng = random.Random(2026)

COMPONENTS = ["auth", "db", "cache", "api", "queue"]
ERROR_KINDS = ["timeout", "refused", "corrupt"]
OK_KINDS = ["ok", "retry", "hit", "miss"]

# --- hierarchy: event -> component, event -> kind, kind -> class ---------
hierarchy = Hierarchy()
for kind in ERROR_KINDS:
    hierarchy.add_edge(f"KIND:{kind}", "CLASS:error")
for kind in OK_KINDS:
    hierarchy.add_edge(f"KIND:{kind}", "CLASS:normal")
for component in COMPONENTS:
    hierarchy.add_item(f"COMP:{component}")
for component in COMPONENTS:
    for kind in ERROR_KINDS + OK_KINDS:
        event = f"{component}.{kind}"
        hierarchy.add_edge(event, f"COMP:{component}")  # first parent
        hierarchy.add_edge(event, f"KIND:{kind}")  # second parent → DAG!

assert not hierarchy.is_forest, "this example exercises DAG support"

# --- synthesize request traces ------------------------------------------
def trace() -> list[str]:
    events = [f"api.{rng.choice(('ok', 'ok', 'retry'))}"]
    # a cache miss tends to hit the db; db trouble cascades into timeouts
    if rng.random() < 0.55:
        events.append(f"cache.{rng.choice(('hit', 'hit', 'miss'))}")
        if events[-1] == "cache.miss":
            db_event = rng.choice(("db.ok", "db.ok", "db.timeout"))
            events.append(db_event)
            if db_event == "db.timeout":
                events.append("api.retry")
                events.append(rng.choice(("db.ok", "db.timeout")))
    if rng.random() < 0.25:
        events.append(f"auth.{rng.choice(('ok', 'ok', 'timeout', 'refused'))}")
    if rng.random() < 0.2:
        events.append(f"queue.{rng.choice(('ok', 'retry'))}")
    return events


database = SequenceDatabase(trace() for _ in range(6000))
print(f"{len(database)} traces, e.g. {' '.join(database[0])}\n")

# --- mine ----------------------------------------------------------------
result = mine(database, hierarchy, sigma=60, gamma=1, lam=4)
print(f"{len(result)} frequent generalized event patterns\n")

print("patterns involving the error class:")
error_patterns = [
    (pattern, freq)
    for pattern, freq in result.decoded().items()
    if any(item.startswith(("CLASS:error", "KIND:timeout")) for item in pattern)
]
error_patterns.sort(key=lambda pair: -pair[1])
for pattern, freq in error_patterns[:12]:
    print(f"{freq:>9}  {' -> '.join(pattern)}")

# the cascade signature: some timeout, a retry, another timeout
cascade = result.frequency("KIND:timeout", "api.retry")
print(f"\nf(KIND:timeout -> api.retry) = {cascade}")
assert cascade > 0, "the cascade pattern should be frequent"
