"""Generalized n-gram mining from text (the paper's NYT use case).

Generates a synthetic natural-language corpus with a CLP hierarchy
(word → lowercase → lemma → part of speech) and mines *generalized
n-grams* with γ=0 — contiguous patterns that may mix words and POS tags,
like the paper's motivating ``the ADJ house`` example.

The script then contrasts hierarchy-aware mining with flat mining to show
which patterns only exist thanks to generalization (the paper's
"non-trivial" outputs, Sec. 6.7).

Run:  python examples/text_ngrams.py
"""

from repro import mine
from repro.analysis import output_statistics, recode_patterns
from repro.datasets import TextCorpusConfig, generate_text_corpus

SIGMA, GAMMA, LAM = 25, 0, 3

print("generating corpus …")
corpus = generate_text_corpus(TextCorpusConfig(num_sentences=4000, seed=42))
stats = corpus.database.stats()
print(
    f"  {stats.num_sequences} sentences, avg length {stats.avg_length:.1f}, "
    f"{stats.unique_items} distinct words\n"
)

print(f"mining generalized n-grams (sigma={SIGMA}, gamma={GAMMA}, lam={LAM}) …")
result = mine(
    corpus.database, corpus.hierarchy("CLP"), sigma=SIGMA, gamma=GAMMA, lam=LAM
)
flat = mine(corpus.database, None, sigma=SIGMA, gamma=GAMMA, lam=LAM)
print(f"  hierarchy-aware: {len(result)} patterns")
print(f"  flat:            {len(flat)} patterns\n")

# --- generalized patterns that mix levels --------------------------------
pos_tags = {"NOUN", "VERB", "ADJ", "ADV", "DET", "PREP", "PRON"}


def is_mixed(pattern: tuple[str, ...]) -> bool:
    kinds = {item in pos_tags for item in pattern}
    return kinds == {True, False}


mixed = [
    (pattern, freq)
    for pattern, freq in result.decoded().items()
    if is_mixed(pattern)
]
mixed.sort(key=lambda pair: -pair[1])
print("top mixed word/POS patterns (cf. 'the ADJ house'):")
for pattern, freq in mixed[:12]:
    print(f"{freq:>9}  {' '.join(pattern)}")

# --- how much does the hierarchy add? ------------------------------------
flat_recoded = recode_patterns(flat.patterns, flat.vocabulary, result.vocabulary)
table3 = output_statistics(result.vocabulary, result.patterns, flat_recoded)
print(
    f"\noutput statistics: {table3.non_trivial_pct:.1f}% non-trivial, "
    f"{table3.closed_pct:.1f}% closed, {table3.maximal_pct:.1f}% maximal"
)
