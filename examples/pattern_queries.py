"""Netspeak-style exploration of mined generalized n-grams.

The paper motivates GSM with exploration tools like the Google n-gram
viewer and Netspeak (Sec. 1/2): mine once, then answer wildcard queries
interactively.  This script mines generalized n-grams from a synthetic
text corpus, builds a :class:`repro.query.PatternIndex`, and runs the
kinds of queries those tools support — plus hierarchy-aware ones they
don't:

* ``the ^ADJ ?``   — what follows "the <some adjective>"?
* ``^PRON ^VERB``  — pronoun–verb bigram templates
* ``? ^PREP ?``    — prepositional contexts
* slot aggregation — which items fill the wildcard, with total mass

Run:  python examples/pattern_queries.py
"""

from repro import PatternIndex, mine
from repro.datasets import TextCorpusConfig, generate_text_corpus

SIGMA, GAMMA, LAM = 25, 0, 3

print("generating corpus …")
corpus = generate_text_corpus(TextCorpusConfig(num_sentences=4000, seed=42))
stats = corpus.database.stats()
print(
    f"  {stats.num_sequences} sentences, avg length {stats.avg_length:.1f}, "
    f"{stats.unique_items} distinct words\n"
)

print(f"mining (sigma={SIGMA}, gamma={GAMMA}, lam={LAM}) …")
result = mine(
    corpus.database, corpus.hierarchy("CLP"), sigma=SIGMA, gamma=GAMMA,
    lam=LAM,
)
index = PatternIndex.from_result(result)
print(f"  indexed {len(index)} generalized n-grams\n")


def show(query: str, limit: int = 8) -> None:
    matches = index.search(query, limit=limit)
    total = index.total_frequency(query)
    print(f"query: {query!r}  ({index.count(query)} patterns, mass {total})")
    for match in matches:
        print(f"{match.frequency:>9}  {match.render()}")
    print()


# --- Netspeak-style wildcard queries --------------------------------------
show("the ^ADJ ?")        # "the ADJ house"-style contexts
show("^PRON ^VERB")       # who does what
show("? ^PREP ?")         # prepositional frames
show("^DET * ^NOUN")      # determiner ... noun with anything between

# --- slot aggregation ------------------------------------------------------
print("which POS classes follow 'the'? (slot_fillers on 'the ?')")
for name, mass in index.slot_fillers("the ?", 1)[:8]:
    print(f"{mass:>9}  {name}")
print()

# --- hierarchy navigation ---------------------------------------------------
seed_pattern = next(iter(index.search("^DET ^NOUN", limit=1))).pattern
print(f"specializations of {' '.join(seed_pattern)!r} present in the output:")
for match in index.specializations_of(seed_pattern)[:8]:
    print(f"{match.frequency:>9}  {match.render()}")
print()

print("generalizations of the same pattern:")
for match in index.generalizations_of(seed_pattern)[:8]:
    print(f"{match.frequency:>9}  {match.render()}")
