"""Web-usage mining: navigation patterns over a page-category hierarchy.

The paper's introduction motivates GSM with web-usage mining [13, 17, 28]:
individual page visits (``/electronics/cameras/canon-eos-70d``) generalize
to their section (``cameras``) and department (``electronics``), revealing
navigation flows like *department landing → some product page → checkout*
that no concrete URL sequence repeats often enough to see.

The script synthesizes user click sessions over a three-level site map,
mines them with LASH at a gap of 1 (users may detour one page), and shows
how the gap parameter changes what is found.

Run:  python examples/web_usage.py
"""

import random

from repro import Hierarchy, MiningParams, Lash, SequenceDatabase

rng = random.Random(91)

# --- the site map: department -> section -> page ---------------------------
DEPARTMENTS = {
    "electronics": ["cameras", "phones", "laptops"],
    "books": ["fiction", "science", "travel"],
    "sports": ["running", "cycling"],
}
PAGES_PER_SECTION = 6

hierarchy = Hierarchy()
pages_by_section: dict[str, list[str]] = {}
for department, sections in DEPARTMENTS.items():
    hierarchy.add_item(f"dept:{department}")
    for section in sections:
        hierarchy.add_edge(f"sec:{section}", f"dept:{department}")
        pages = [f"/{department}/{section}/p{i}" for i in range(PAGES_PER_SECTION)]
        pages_by_section[section] = pages
        for page in pages:
            hierarchy.add_edge(page, f"sec:{section}")
# special pages without a hierarchy
for special in ("home", "search", "cart", "checkout"):
    hierarchy.add_item(special)

# --- synthesize sessions ----------------------------------------------------
def session() -> list[str]:
    """home → browse within a preferred section (with search detours) →
    sometimes cart/checkout."""
    section = rng.choice(sorted(pages_by_section))
    events = ["home"]
    for _ in range(rng.randint(1, 4)):
        if rng.random() < 0.25:
            events.append("search")
        events.append(rng.choice(pages_by_section[section]))
    if rng.random() < 0.35:
        events.append("cart")
        if rng.random() < 0.6:
            events.append("checkout")
    return events


database = SequenceDatabase(session() for _ in range(8000))
print(f"{len(database)} sessions, e.g.:")
for i in range(3):
    print("   " + "  ->  ".join(database[i]))

# --- mine at two gaps -------------------------------------------------------
for gamma in (0, 1):
    result = Lash(MiningParams(sigma=400, gamma=gamma, lam=3)).mine(
        database, hierarchy
    )
    print(f"\ngamma={gamma}: {len(result)} frequent navigation patterns")
    section_level = [
        (freq, pattern)
        for pattern, freq in result.decoded().items()
        if any(item.startswith(("sec:", "dept:")) for item in pattern)
    ]
    for freq, pattern in sorted(section_level, reverse=True)[:8]:
        print(f"{freq:>7}  {'  ->  '.join(pattern)}")

# the purchase funnel only becomes visible at the *department* level:
# concrete product pages rotate, the generalized flow does not
flows_to_cart = [
    (pattern, freq)
    for pattern, freq in result.decoded().items()
    if len(pattern) == 2 and pattern[0].startswith("dept:")
    and pattern[1] == "cart"
]
print("\ndepartment-level flows into the cart (gamma=1):")
for pattern, freq in sorted(flows_to_cart, key=lambda kv: -kv[1]):
    print(f"{freq:>7}  {pattern[0]}  ->  cart")
assert flows_to_cart, "department-level funnel patterns must be frequent"
no_flat_funnel = all(
    not (len(p) == 2 and p[0].startswith("/") and p[1] == "cart")
    for p in result.decoded()
)
assert no_flat_funnel, "no single product page should reach the threshold"
