"""Failure-cascade mining in machine event logs, with planted ground truth.

Uses the library's event-log generator (``repro.datasets.events``): concrete
events (``evt:0.1.2.3``) generalize through error classes and components up
to subsystems, and the generator *plants* class-level failure cascades whose
concrete realizations all differ.  The example shows that

1. LASH recovers every planted cascade at the class level,
2. flat mining at the same support finds none of them,
3. the closed/maximal filters compress the output, and
4. mined patterns round-trip through the pattern file format.

Run:  python examples/failure_cascades.py
"""

import tempfile
from pathlib import Path

from repro import Lash, MiningParams, mine
from repro.analysis import filter_result
from repro.datasets import EventLogConfig, generate_event_log
from repro.io import read_patterns, write_patterns

# --- generate logs with planted cascades ---------------------------------
config = EventLogConfig(num_machines=1200, num_cascades=3, seed=7)
log = generate_event_log(config)
stats = log.database.stats()
print(
    f"{stats.num_sequences} machine logs, avg length {stats.avg_length:.1f}, "
    f"{stats.unique_items} distinct events"
)
print("planted cascades (class level):")
for template in log.planted_patterns():
    print("   " + "  ->  ".join(template))

# --- mine with the hierarchy ----------------------------------------------
sigma = len(log.database) // 20
params = MiningParams(sigma=sigma, gamma=config.max_interleave, lam=4)
result = Lash(params).mine(log.database, log.hierarchy)
print(f"\nLASH {params.describe()}: {len(result)} frequent patterns")

mined = result.decoded()
recovered = [t for t in log.planted_patterns() if t in mined]
print(f"planted cascades recovered: {len(recovered)}/{len(log.cascades)}")
assert len(recovered) == len(log.cascades)

# --- the same support with no hierarchy sees nothing ----------------------
flat = mine(log.database, sigma=sigma, gamma=config.max_interleave, lam=4)
flat_hits = [t for t in log.planted_patterns() if t in flat.decoded()]
print(f"flat mining finds {len(flat.decoded())} patterns, "
      f"{len(flat_hits)} of the planted cascades (expected 0)")
assert not flat_hits

# --- redundancy reduction --------------------------------------------------
closed = filter_result(result, "closed")
maximal = filter_result(result, "maximal")
print(
    f"\noutput compression: {len(result)} frequent -> "
    f"{len(closed)} closed -> {len(maximal)} maximal"
)

# --- persist and reload ----------------------------------------------------
with tempfile.TemporaryDirectory() as tmp:
    path = Path(tmp) / "cascades.tsv.gz"
    write_patterns(maximal, path)
    reloaded = read_patterns(path)
    assert reloaded == maximal.decoded()
    print(f"wrote and re-read {len(reloaded)} maximal patterns ({path.name})")

print("\ntop class-level patterns:")
class_patterns = [
    (freq, pattern)
    for pattern, freq in mined.items()
    if all(item.startswith("class:") for item in pattern)
]
for freq, pattern in sorted(class_patterns, reverse=True)[:10]:
    print(f"{freq:>7}  {'  ->  '.join(pattern)}")
