"""Customer-behaviour mining over product sessions (the paper's AMZN case).

Generates synthetic user sessions under a product-category taxonomy and
mines generalized purchase patterns — "users first buy some camera, then
some photography book" — that only exist at the category level.  Also shows
the effect of hierarchy depth (h2 vs h8) on output size, mirroring the
paper's Fig. 5(e) discussion.

Run:  python examples/product_sequences.py
"""

from repro import mine
from repro.datasets import ProductDataConfig, generate_product_data

SIGMA, GAMMA, LAM = 40, 1, 3

print("generating product sessions …")
data = generate_product_data(
    ProductDataConfig(num_users=3000, num_products=600, seed=77)
)
stats = data.database.stats()
print(
    f"  {stats.num_sequences} sessions, avg length {stats.avg_length:.1f}, "
    f"{stats.unique_items} distinct products\n"
)

for levels in (2, 4, 8):
    hierarchy = data.hierarchy(levels)
    result = mine(data.database, hierarchy, sigma=SIGMA, gamma=GAMMA, lam=LAM)
    print(
        f"h{levels}: {len(hierarchy):>5} hierarchy items "
        f"-> {len(result):>5} frequent generalized sequences"
    )

print("\ntop category-level patterns under h4:")
result = mine(data.database, data.hierarchy(4), sigma=SIGMA, gamma=GAMMA, lam=LAM)
category_patterns = [
    (pattern, freq)
    for pattern, freq in result.decoded().items()
    if all(item.startswith("cat:") for item in pattern)
]
category_patterns.sort(key=lambda pair: -pair[1])
for pattern, freq in category_patterns[:10]:
    print(f"{freq:>9}  {' -> '.join(pattern)}")

flat = mine(data.database, None, sigma=SIGMA, gamma=GAMMA, lam=LAM)
print(
    f"\nflat mining finds {len(flat)} patterns at the same support — "
    f"category behaviour is invisible without the hierarchy"
)
