"""Taming redundant output: closed/maximal mining and ranking.

The paper notes (Sec. 2/6.7) that the GSM output is large and partly
redundant — ``b1D`` frequent implies ``BD`` frequent — and names direct
mining of closed and maximal generalized sequences as future work.  This
script runs that extension on product sessions:

1. Mine the full output, then mine *directly* with ``ClosedLash`` in
   closed and maximal mode, showing how much output the modes remove.
2. Rank the closed patterns by hierarchy-aware R-interestingness
   (Srikant & Agrawal's measure, adapted to sequences): a pattern is
   interesting when its frequency exceeds what its own generalizations
   predict.

Run:  python examples/closed_patterns.py
"""

from repro import ClosedLash, Lash, MiningParams
from repro.analysis import rank_patterns
from repro.datasets import ProductDataConfig, generate_product_data

SIGMA, GAMMA, LAM = 40, 1, 4

print("generating product sessions …")
data = generate_product_data(
    ProductDataConfig(num_users=3000, num_products=600, seed=77)
)
hierarchy = data.hierarchy(4)
params = MiningParams(SIGMA, GAMMA, LAM)

print(f"mining (sigma={SIGMA}, gamma={GAMMA}, lam={LAM}) …")
full = Lash(params).mine(data.database, hierarchy)
closed = ClosedLash(params, mode="closed").mine(data.database, hierarchy)
maximal = ClosedLash(params, mode="maximal").mine(data.database, hierarchy)

print(f"  full output:     {len(full):>6} patterns")
print(
    f"  closed:          {len(closed):>6} patterns "
    f"({100 * len(closed) / len(full):.1f}% of full)"
)
print(
    f"  maximal:         {len(maximal):>6} patterns "
    f"({100 * len(maximal) / len(full):.1f}% of full)\n"
)

# every closed pattern keeps its exact frequency from the full output
assert all(full.patterns[p] == f for p, f in closed.patterns.items())
# maximality is stricter than closedness
assert set(maximal.patterns) <= set(closed.patterns)

print("most frequent maximal patterns (no frequent extension exists):")
for pattern, freq in maximal.top(8):
    print(f"{freq:>9}  {pattern}")

print("\nmost *interesting* closed patterns (R-interestingness):")
ranked = rank_patterns(closed, measure="r-interest")
shown = 0
for scored in ranked:
    if scored.score == float("inf"):
        continue  # unexplained patterns are trivially interesting
    print(
        f"{scored.frequency:>9}  score {scored.score:5.2f}  "
        f"{scored.render()}"
    )
    shown += 1
    if shown == 8:
        break

print("\npatterns whose frequency their generalizations fully explain")
print("(score << 1 — candidates for suppression in exploration UIs):")
for scored in ranked[::-1][:5]:
    print(
        f"{scored.frequency:>9}  score {scored.score:5.2f}  "
        f"{scored.render()}"
    )
